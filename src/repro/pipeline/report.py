"""Per-compilation instrumentation: stage statistics and the report.

Every :class:`repro.pipeline.Pipeline` run produces one
:class:`CompilationReport` describing what happened stage by stage: wall
time, input/output sizes and solver counters.  The report is attached to
the :class:`repro.core.AdaptationResult` returned by
:func:`repro.compile`, so batch drivers can aggregate timing without
re-instrumenting the flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

#: Option value types that serialize to JSON verbatim.
_JSON_PRIMITIVES = (str, int, float, bool, type(None))


def _jsonable_option(value: object) -> object:
    """A JSON-safe stand-in for one report option value."""
    if isinstance(value, _JSON_PRIMITIVES):
        return value
    if isinstance(value, (list, tuple)) and all(
        isinstance(v, _JSON_PRIMITIVES) for v in value
    ):
        return list(value)
    return repr(value)


@dataclass(frozen=True)
class PassStats:
    """Statistics of one pipeline stage.

    ``seconds`` is the wall time of the stage; ``counters`` holds
    stage-specific sizes (gate counts, candidate counts, solver rounds...).
    """

    name: str
    seconds: float
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form; timings round-trip exactly."""
        return {"name": self.name, "seconds": self.seconds,
                "counters": dict(self.counters)}

    @staticmethod
    def from_dict(payload: dict) -> "PassStats":
        """Inverse of :meth:`to_dict`."""
        return PassStats(
            name=payload["name"],
            seconds=float(payload["seconds"]),
            counters={k: float(v) for k, v in payload.get("counters", {}).items()},
        )

    def __repr__(self) -> str:
        rendered = ", ".join(f"{k}={v:g}" for k, v in self.counters.items())
        return f"PassStats({self.name}, {1e3 * self.seconds:.2f}ms{', ' + rendered if rendered else ''})"


@dataclass
class CompilationReport:
    """Provenance and per-stage statistics of one compilation.

    Attributes
    ----------
    technique:
        Canonical registry key of the technique that ran.
    circuit_name, circuit_hash:
        Identity of the input circuit (the hash is the cache key component).
    target_fingerprint:
        Deterministic fingerprint of the target calibration.
    options:
        The options the pipeline ran with (primitive values only).
    stages:
        One :class:`PassStats` per executed pass, in execution order.
    cache_hit:
        True when the result was served from the compilation cache (the
        stages then describe the original, cached run).
    contenders:
        Portfolio-compilation provenance: one summary dict per technique
        raced by :meth:`repro.service.CompilationService.compile_portfolio`
        (empty for ordinary single-technique compilations).
    degraded_from:
        When a compile deadline fired and :func:`repro.compile` fell back
        down the degradation ladder, the technique key originally
        requested (``technique`` then names the fallback that produced
        this result).  ``None`` for ordinary compilations.
    deadline_events:
        The interruption record of each abandoned attempt (see
        :meth:`repro.resilience.CompileInterrupted.event`), in order.
    resources:
        Per-compile resource attribution measured by the pipeline when
        telemetry is enabled: ``cpu_seconds`` (user+system CPU consumed
        while the passes ran) and ``peak_rss_bytes`` (the process
        high-water resident set at the end of the run).  Empty when
        telemetry was off for the original compile.
    """

    technique: str
    circuit_name: str
    circuit_hash: str
    target_fingerprint: str
    options: Dict[str, object] = field(default_factory=dict)
    stages: List[PassStats] = field(default_factory=list)
    cache_hit: bool = False
    contenders: List[Dict[str, object]] = field(default_factory=list)
    degraded_from: Optional[str] = None
    deadline_events: List[Dict[str, object]] = field(default_factory=list)
    resources: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total wall time over all stages."""
        return sum(stage.seconds for stage in self.stages)

    @property
    def stage_names(self) -> List[str]:
        """Names of the executed stages in order."""
        return [stage.name for stage in self.stages]

    def stage(self, name: str) -> PassStats:
        """Return the statistics of the named stage."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage {name!r} in report (stages: {self.stage_names})")

    def stage_seconds(self) -> Dict[str, float]:
        """Mapping of stage name to wall time in seconds."""
        return {stage.name: stage.seconds for stage in self.stages}

    def as_cache_hit(self) -> "CompilationReport":
        """A copy of this report flagged as served from the cache."""
        return replace(self, cache_hit=True, stages=list(self.stages),
                       contenders=[dict(c) for c in self.contenders],
                       deadline_events=[dict(e) for e in self.deadline_events],
                       resources=dict(self.resources))

    def to_dict(self) -> dict:
        """JSON-serializable form for the persistent result store.

        Option values are kept verbatim when they are JSON-safe primitives
        (or flat tuples of primitives, stored as lists and restored as
        tuples by :meth:`from_dict`); anything else — e.g. a custom
        ``rules`` list — degrades to its ``repr``.  Uncacheable results
        never reach the store, so the lossy branch only affects reports a
        user serializes by hand.
        """
        return {
            "technique": self.technique,
            "circuit_name": self.circuit_name,
            "circuit_hash": self.circuit_hash,
            "target_fingerprint": self.target_fingerprint,
            "options": {key: _jsonable_option(value)
                        for key, value in self.options.items()},
            "stages": [stage.to_dict() for stage in self.stages],
            "cache_hit": self.cache_hit,
            "contenders": [dict(c) for c in self.contenders],
            "degraded_from": self.degraded_from,
            "deadline_events": [dict(e) for e in self.deadline_events],
            "resources": dict(self.resources),
        }

    @staticmethod
    def from_dict(payload: dict) -> "CompilationReport":
        """Inverse of :meth:`to_dict`."""
        options = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in payload.get("options", {}).items()
        }
        return CompilationReport(
            technique=payload["technique"],
            circuit_name=payload["circuit_name"],
            circuit_hash=payload["circuit_hash"],
            target_fingerprint=payload["target_fingerprint"],
            options=options,
            stages=[PassStats.from_dict(s) for s in payload.get("stages", [])],
            cache_hit=bool(payload.get("cache_hit", False)),
            contenders=[dict(c) for c in payload.get("contenders", [])],
            degraded_from=payload.get("degraded_from"),
            deadline_events=[dict(e) for e in payload.get("deadline_events", [])],
            resources={k: float(v)
                       for k, v in payload.get("resources", {}).items()},
        )

    def summary(self) -> str:
        """A small aligned text table of the per-stage timings."""
        lines = [f"{'stage':<16} {'time [ms]':>10}  counters"]
        for stage in self.stages:
            rendered = ", ".join(f"{k}={v:g}" for k, v in stage.counters.items())
            lines.append(f"{stage.name:<16} {1e3 * stage.seconds:>10.2f}  {rendered}")
        lines.append(f"{'total':<16} {1e3 * self.total_seconds:>10.2f}  "
                     f"technique={self.technique}, cache_hit={self.cache_hit}")
        return "\n".join(lines)


def merge_stage_seconds(reports: Mapping[str, "CompilationReport"]) -> Dict[str, float]:
    """Aggregate stage timings over a batch of reports (for batch drivers)."""
    totals: Dict[str, float] = {}
    for report in reports.values():
        for stage in report.stages:
            totals[stage.name] = totals.get(stage.name, 0.0) + stage.seconds
    return totals
