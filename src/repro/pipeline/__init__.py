"""Pass-pipeline infrastructure behind :func:`repro.compile`.

The adaptation flow of the paper (Fig. 2) runs as eight named, reorderable
passes — ``route``, ``preprocess``, ``evaluate_rules``, ``solve``,
``apply``, ``merge_1q``, ``verify``, ``analyze_cost`` — each instrumented
with wall-time and size counters collected into a
:class:`CompilationReport`.  Techniques are pipelines with different rule
factories and selection strategies; see :mod:`repro.api.registry` for the
string-keyed technique registry built on top.
"""

from repro.pipeline.manager import Pipeline
from repro.pipeline.passes import (
    AnalyzeCostPass,
    ApplyPass,
    EvaluateRulesPass,
    GreedySelection,
    KakRules,
    MergeSingleQubitPass,
    Pass,
    PassContext,
    PreprocessPass,
    RoutePass,
    SelectAll,
    SelectNone,
    SmtSelection,
    SolvePass,
    VerifyPass,
    no_rules,
    route_if_needed,
    sat_rules,
    template_rules,
)
from repro.pipeline.report import CompilationReport, PassStats, merge_stage_seconds

__all__ = [
    "Pipeline",
    "Pass",
    "PassContext",
    "RoutePass",
    "PreprocessPass",
    "EvaluateRulesPass",
    "SolvePass",
    "ApplyPass",
    "MergeSingleQubitPass",
    "VerifyPass",
    "AnalyzeCostPass",
    "SmtSelection",
    "GreedySelection",
    "SelectAll",
    "SelectNone",
    "KakRules",
    "sat_rules",
    "template_rules",
    "no_rules",
    "route_if_needed",
    "CompilationReport",
    "PassStats",
    "merge_stage_seconds",
]
