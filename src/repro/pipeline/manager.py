"""The :class:`Pipeline` (pass manager): ordered, instrumented, reorderable.

A pipeline is an immutable ordered sequence of named passes.  Running it
executes every pass against a fresh :class:`PassContext`, measures each
stage's wall time and size counters, and returns the
:class:`repro.core.AdaptationResult` with a :class:`CompilationReport`
attached.  The rewriting helpers (:meth:`Pipeline.without`,
:meth:`Pipeline.replaced`, :meth:`Pipeline.inserted_after`, ...) return new
pipelines, so registered techniques can be derived from one another.
"""

from __future__ import annotations

import time
from typing import List, Mapping, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.hardware.target import Target
from repro.pipeline.passes import Pass, PassContext
from repro.pipeline.report import CompilationReport, PassStats
from repro.resilience.budget import check_budget
from repro.telemetry.registry import telemetry_enabled
from repro.telemetry.resources import resource_usage
from repro.trace.metrics import observe_pass
from repro.trace.tracer import current_tracer


class Pipeline:
    """An ordered sequence of named passes with per-stage instrumentation."""

    def __init__(self, passes: Sequence[Pass], name: str = "pipeline") -> None:
        names = [p.name for p in passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in pipeline: {names}")
        self._passes: List[Pass] = list(passes)
        self.name = name

    # -- introspection --------------------------------------------------
    @property
    def passes(self) -> List[Pass]:
        """The passes in execution order (a copy)."""
        return list(self._passes)

    @property
    def pass_names(self) -> List[str]:
        """The pass names in execution order."""
        return [p.name for p in self._passes]

    def __len__(self) -> int:
        return len(self._passes)

    def __repr__(self) -> str:
        return f"Pipeline({self.name}: {' -> '.join(self.pass_names)})"

    def _index_of(self, name: str) -> int:
        for index, pass_ in enumerate(self._passes):
            if pass_.name == name:
                return index
        raise KeyError(f"pipeline {self.name!r} has no pass {name!r} "
                       f"(passes: {self.pass_names})")

    # -- rewriting ------------------------------------------------------
    def without(self, name: str) -> "Pipeline":
        """A new pipeline with the named pass removed."""
        index = self._index_of(name)
        return Pipeline(self._passes[:index] + self._passes[index + 1:], self.name)

    def replaced(self, name: str, replacement: Pass) -> "Pipeline":
        """A new pipeline with the named pass swapped for ``replacement``."""
        index = self._index_of(name)
        passes = list(self._passes)
        passes[index] = replacement
        return Pipeline(passes, self.name)

    def inserted_after(self, name: str, new_pass: Pass) -> "Pipeline":
        """A new pipeline with ``new_pass`` inserted after the named pass."""
        index = self._index_of(name)
        passes = list(self._passes)
        passes.insert(index + 1, new_pass)
        return Pipeline(passes, self.name)

    def inserted_before(self, name: str, new_pass: Pass) -> "Pipeline":
        """A new pipeline with ``new_pass`` inserted before the named pass."""
        index = self._index_of(name)
        passes = list(self._passes)
        passes.insert(index, new_pass)
        return Pipeline(passes, self.name)

    def renamed(self, name: str) -> "Pipeline":
        """A copy of this pipeline under a different name."""
        return Pipeline(self._passes, name)

    # -- execution ------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        target: Target,
        technique: Optional[str] = None,
        options: Optional[Mapping[str, object]] = None,
        report: Optional[CompilationReport] = None,
    ):
        """Execute all passes and return the adaptation result with report.

        Parameters
        ----------
        circuit, target:
            Input circuit and hardware target.
        technique:
            Canonical technique key recorded in result and report
            (defaults to the pipeline name).
        options:
            Compile options read by the passes.
        report:
            A pre-seeded report carrying the circuit hash / target
            fingerprint; a bare one is created when omitted.
        """
        technique = technique or self.name
        context = PassContext(
            circuit=circuit,
            target=target,
            technique=technique,
            options=dict(options or {}),
        )
        if report is None:
            report = CompilationReport(
                technique=technique,
                circuit_name=circuit.name,
                circuit_hash="",
                target_fingerprint="",
                options=dict(options or {}),
            )
        tracer = current_tracer()
        pipeline_token = None
        if tracer.enabled:
            pipeline_token = tracer.begin(
                "pipeline", "pipeline",
                technique=technique, circuit=circuit.name,
                gates_in=len(circuit.instructions),
            )
        usage_start = resource_usage() if telemetry_enabled() else None
        try:
            for pass_ in self._passes:
                # Pass boundaries are deadline checkpoints too, so
                # budgets fire for every technique — including those
                # whose passes never enter a solver loop.
                check_budget(f"pass:{pass_.name}")
                pass_token = (
                    tracer.begin(f"pass:{pass_.name}", "pipeline")
                    if tracer.enabled else None
                )
                started = time.perf_counter()
                pass_.run(context)
                elapsed = time.perf_counter() - started
                counters = dict(pass_.counters(context))
                report.stages.append(PassStats(pass_.name, elapsed, counters))
                observe_pass(pass_.name, elapsed)
                if pass_token is not None:
                    tracer.end(pass_token, **counters)
            if usage_start is not None:
                cpu_end, rss_end = resource_usage()
                report.resources = {
                    "cpu_seconds": max(0.0, cpu_end - usage_start[0]),
                    "peak_rss_bytes": float(rss_end),
                }
            result = self._finalize(context, report)
        finally:
            if pipeline_token is not None:
                gates_out = (len(context.adapted.instructions)
                             if context.adapted is not None else None)
                tracer.end(pipeline_token, gates_out=gates_out)
        return result

    @staticmethod
    def _finalize(context: PassContext, report: CompilationReport):
        from repro.core.adapter import AdaptationResult

        if context.cost is None or context.adapted is None:
            raise RuntimeError(
                "pipeline finished without producing a costed circuit; "
                "did you remove the 'apply' or 'analyze_cost' pass?"
            )
        statistics = dict(context.solver_statistics)
        return AdaptationResult(
            technique=context.technique,
            adapted_circuit=context.adapted,
            cost=context.cost,
            baseline_cost=context.baseline_cost,
            chosen_substitutions=list(context.chosen),
            objective_value=context.objective_value,
            statistics=statistics,
            report=report,
        )
