"""Distribution comparison metrics (Hellinger fidelity and friends)."""

from __future__ import annotations

import math
from typing import Dict, Mapping


def _normalize(distribution: Mapping[str, float]) -> Dict[str, float]:
    total = sum(distribution.values())
    if total <= 0:
        raise ValueError("distribution has no probability mass")
    return {key: value / total for key, value in distribution.items() if value > 0}


def hellinger_distance(first: Mapping[str, float], second: Mapping[str, float]) -> float:
    """Hellinger distance between two outcome distributions (in [0, 1])."""
    p = _normalize(first)
    q = _normalize(second)
    keys = set(p) | set(q)
    bhattacharyya = sum(math.sqrt(p.get(key, 0.0) * q.get(key, 0.0)) for key in keys)
    bhattacharyya = min(1.0, bhattacharyya)
    return math.sqrt(1.0 - bhattacharyya)


def hellinger_fidelity(first: Mapping[str, float], second: Mapping[str, float]) -> float:
    """Hellinger fidelity ``(1 - H^2)^2`` (the metric reported by the paper)."""
    distance = hellinger_distance(first, second)
    return (1.0 - distance**2) ** 2


def total_variation_distance(first: Mapping[str, float], second: Mapping[str, float]) -> float:
    """Total variation distance between two outcome distributions."""
    p = _normalize(first)
    q = _normalize(second)
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(key, 0.0) - q.get(key, 0.0)) for key in keys)
