"""Density-matrix simulation with gate-fidelity and idle-time noise.

The noise model follows Section V.B of the paper: every gate is followed by
a depolarizing channel whose strength corresponds to the gate's fidelity on
the target, and thermal relaxation (T1/T2) acts on every qubit for the idle
windows of the ASAP schedule.

Gates and Kraus channels are applied locally (tensor contraction against
the target axes only, see :mod:`repro.simulator.kernels`); the legacy
full-matrix path is kept behind ``dense=True`` as the reference oracle for
the equivalence tests and the perf-harness baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import expand_gate_matrix
from repro.hardware.target import Target
from repro.simulator.kernels import apply_kraus_density, apply_unitary_density
from repro.simulator.metrics import hellinger_fidelity
from repro.simulator.noise import depolarizing_kraus, depolarizing_strength_for_fidelity, thermal_relaxation_kraus
from repro.simulator.statevector import _distribution_from_vector, circuit_probabilities
from repro.transpiler.scheduling import asap_schedule, gate_fidelity


@dataclass
class NoisySimulationResult:
    """Outcome of a noisy simulation."""

    probabilities: Dict[str, float]
    ideal_probabilities: Dict[str, float]
    hellinger_fidelity: float
    total_idle_time: float
    duration: float


class DensityMatrixSimulator:
    """Small exact density-matrix simulator with the paper's noise model.

    ``dense=True`` switches every update to the legacy full-register matrix
    path (``expand_gate_matrix`` plus dense matmuls); it produces identical
    density matrices and exists so the local kernels can be checked and
    benchmarked against it.
    """

    def __init__(
        self,
        target: Target,
        include_idle_noise: bool = True,
        dense: bool = False,
    ) -> None:
        self.target = target
        self.include_idle_noise = include_idle_noise
        self.dense = dense

    # ------------------------------------------------------------------
    def _apply_unitary(
        self, rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
    ) -> np.ndarray:
        if self.dense:
            full = expand_gate_matrix(matrix, qubits, num_qubits)
            return full @ rho @ full.conj().T
        return apply_unitary_density(rho, matrix, qubits, num_qubits)

    def _apply_kraus(
        self, rho: np.ndarray, kraus: Sequence[np.ndarray], qubit: int, num_qubits: int
    ) -> np.ndarray:
        if self.dense:
            result = np.zeros_like(rho)
            for operator in kraus:
                full = expand_gate_matrix(operator, (qubit,), num_qubits)
                result = result + full @ rho @ full.conj().T
            return result
        return apply_kraus_density(rho, kraus, (qubit,), num_qubits)

    # ------------------------------------------------------------------
    def evolve(self, circuit: QuantumCircuit) -> np.ndarray:
        """Return the final density matrix of the noisy evolution."""
        num_qubits = circuit.num_qubits
        dimension = 2**num_qubits
        rho = np.zeros((dimension, dimension), dtype=complex)
        rho[0, 0] = 1.0

        schedule = asap_schedule(circuit, self.target)

        # Interleave gates and idle windows in time order so that thermal
        # relaxation acts at (approximately) the right point of the evolution.
        events = []
        for index, instruction in enumerate(circuit.instructions):
            events.append((schedule.start_times[index], 0, ("gate", index)))
        if self.include_idle_noise:
            for qubit, start, duration in schedule.idle_windows():
                events.append((start, 1, ("idle", qubit, duration)))
        events.sort(key=lambda event: (event[0], event[1]))

        for _, __, payload in events:
            if payload[0] == "gate":
                instruction = circuit.instructions[payload[1]]
                rho = self._apply_unitary(
                    rho, instruction.gate.to_matrix(), instruction.qubits, num_qubits
                )
                fidelity = gate_fidelity(instruction, self.target)
                strength = depolarizing_strength_for_fidelity(
                    fidelity, len(instruction.qubits)
                )
                if strength > 0:
                    kraus = depolarizing_kraus(strength)
                    for qubit in instruction.qubits:
                        rho = self._apply_kraus(rho, kraus, qubit, num_qubits)
            else:
                _, qubit, duration = payload
                kraus = thermal_relaxation_kraus(duration, self.target.t1, self.target.t2)
                rho = self._apply_kraus(rho, kraus, qubit, num_qubits)
        return rho

    # ------------------------------------------------------------------
    def probabilities(self, circuit: QuantumCircuit) -> Dict[str, float]:
        """Measurement outcome distribution of the noisy evolution."""
        rho = self.evolve(circuit)
        diagonal = np.clip(np.real(np.diag(rho)), 0.0, None)
        diagonal = diagonal / diagonal.sum()
        return _distribution_from_vector(diagonal, circuit.num_qubits, cutoff=1e-9)

    def run(
        self, circuit: QuantumCircuit, ideal_circuit: Optional[QuantumCircuit] = None
    ) -> NoisySimulationResult:
        """Simulate noisily and compare against the ideal distribution.

        ``ideal_circuit`` defaults to the circuit itself (its noiseless
        statevector defines the reference distribution); pass the original,
        un-adapted circuit to compare an adaptation against the intended
        computation.
        """
        reference = ideal_circuit if ideal_circuit is not None else circuit
        ideal = circuit_probabilities(reference)
        noisy = self.probabilities(circuit)
        schedule = asap_schedule(circuit, self.target)
        return NoisySimulationResult(
            probabilities=noisy,
            ideal_probabilities=ideal,
            hellinger_fidelity=hellinger_fidelity(noisy, ideal),
            total_idle_time=schedule.total_idle_time,
            duration=schedule.total_duration,
        )
