"""Density-matrix simulation with gate-fidelity and idle-time noise.

The noise model follows Section V.B of the paper: every gate is followed by
a depolarizing channel whose strength corresponds to the gate's fidelity on
the target, and thermal relaxation (T1/T2) acts on every qubit for the idle
windows of the ASAP schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import expand_gate_matrix
from repro.hardware.target import Target
from repro.simulator.metrics import hellinger_fidelity
from repro.simulator.noise import depolarizing_kraus, depolarizing_strength_for_fidelity, thermal_relaxation_kraus
from repro.simulator.statevector import measurement_probabilities, simulate_statevector
from repro.transpiler.scheduling import asap_schedule, gate_fidelity


@dataclass
class NoisySimulationResult:
    """Outcome of a noisy simulation."""

    probabilities: Dict[str, float]
    ideal_probabilities: Dict[str, float]
    hellinger_fidelity: float
    total_idle_time: float
    duration: float


class DensityMatrixSimulator:
    """Small exact density-matrix simulator with the paper's noise model."""

    def __init__(self, target: Target, include_idle_noise: bool = True) -> None:
        self.target = target
        self.include_idle_noise = include_idle_noise

    # ------------------------------------------------------------------
    def _apply_unitary(self, rho: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        return matrix @ rho @ matrix.conj().T

    def _apply_kraus(
        self, rho: np.ndarray, kraus: Sequence[np.ndarray], qubit: int, num_qubits: int
    ) -> np.ndarray:
        result = np.zeros_like(rho)
        for operator in kraus:
            full = expand_gate_matrix(operator, (qubit,), num_qubits)
            result = result + full @ rho @ full.conj().T
        return result

    # ------------------------------------------------------------------
    def evolve(self, circuit: QuantumCircuit) -> np.ndarray:
        """Return the final density matrix of the noisy evolution."""
        num_qubits = circuit.num_qubits
        dimension = 2**num_qubits
        rho = np.zeros((dimension, dimension), dtype=complex)
        rho[0, 0] = 1.0

        schedule = asap_schedule(circuit, self.target)

        # Interleave gates and idle windows in time order so that thermal
        # relaxation acts at (approximately) the right point of the evolution.
        events = []
        for index, instruction in enumerate(circuit.instructions):
            events.append((schedule.start_times[index], 0, ("gate", index)))
        if self.include_idle_noise:
            for qubit, start, duration in schedule.idle_windows():
                events.append((start, 1, ("idle", qubit, duration)))
        events.sort(key=lambda event: (event[0], event[1]))

        for _, __, payload in events:
            if payload[0] == "gate":
                instruction = circuit.instructions[payload[1]]
                matrix = expand_gate_matrix(
                    instruction.gate.to_matrix(), instruction.qubits, num_qubits
                )
                rho = self._apply_unitary(rho, matrix)
                fidelity = gate_fidelity(instruction, self.target)
                strength = depolarizing_strength_for_fidelity(
                    fidelity, len(instruction.qubits)
                )
                if strength > 0:
                    kraus = depolarizing_kraus(strength)
                    for qubit in instruction.qubits:
                        rho = self._apply_kraus(rho, kraus, qubit, num_qubits)
            else:
                _, qubit, duration = payload
                kraus = thermal_relaxation_kraus(duration, self.target.t1, self.target.t2)
                rho = self._apply_kraus(rho, kraus, qubit, num_qubits)
        return rho

    # ------------------------------------------------------------------
    def probabilities(self, circuit: QuantumCircuit) -> Dict[str, float]:
        """Measurement outcome distribution of the noisy evolution."""
        rho = self.evolve(circuit)
        diagonal = np.clip(np.real(np.diag(rho)), 0.0, None)
        diagonal = diagonal / diagonal.sum()
        return {
            format(index, f"0{circuit.num_qubits}b"): float(diagonal[index])
            for index in range(len(diagonal))
            if diagonal[index] > 1e-9
        }

    def run(
        self, circuit: QuantumCircuit, ideal_circuit: Optional[QuantumCircuit] = None
    ) -> NoisySimulationResult:
        """Simulate noisily and compare against the ideal distribution.

        ``ideal_circuit`` defaults to the circuit itself (its noiseless
        statevector defines the reference distribution); pass the original,
        un-adapted circuit to compare an adaptation against the intended
        computation.
        """
        reference = ideal_circuit if ideal_circuit is not None else circuit
        ideal = measurement_probabilities(simulate_statevector(reference), reference.num_qubits)
        noisy = self.probabilities(circuit)
        schedule = asap_schedule(circuit, self.target)
        return NoisySimulationResult(
            probabilities=noisy,
            ideal_probabilities=ideal,
            hellinger_fidelity=hellinger_fidelity(noisy, ideal),
            total_idle_time=schedule.total_idle_time,
            duration=schedule.total_duration,
        )
