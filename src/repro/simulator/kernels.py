"""Local gate-application kernels for statevector and density simulation.

Instead of embedding every k-qubit gate into a full ``2^n x 2^n`` matrix
(:func:`repro.circuits.unitary.expand_gate_matrix`) and multiplying, the
kernels here reshape the state into a rank-``n`` tensor and contract the
gate against only its target axes.  A 1q/2q gate application then costs
``O(2^n)`` instead of ``O(4^n)`` (and ``O(4^n)`` instead of ``O(16^n)``
per density-matrix update), which is what makes the noisy evaluation
sweeps of the paper tractable at 10+ qubits.

Conventions
-----------
All states use little-endian basis ordering: the computational-basis index
``i = sum(b_q << q)``, so qubit 0 is the least significant bit.  When a
``2^n`` vector is reshaped to shape ``(2,) * n``, tensor axis ``n - 1 - q``
therefore corresponds to qubit ``q``.  Gate matrices are little-endian over
their own qubit tuple (``qubits[0]`` is the gate's least significant bit),
matching :func:`expand_gate_matrix`.

The kernels accept (and return) flat arrays; reshaping is free in numpy as
long as the buffer is contiguous, so intermediate tensor views cost
nothing.  Extra trailing axes (e.g. the column axis when evolving a full
unitary, or a batch of states) ride along untouched, which is how
:func:`repro.circuits.unitary.circuit_unitary` reuses the same kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "apply_gate_statevector",
    "apply_gate_tensor",
    "apply_unitary_density",
    "apply_kraus_density",
    "probabilities_vector",
    "sample_counts",
]


def _gate_tensor(matrix: np.ndarray, k: int) -> np.ndarray:
    """Reshape a ``2^k x 2^k`` gate matrix into a rank-``2k`` tensor.

    The first ``k`` axes are output bits, the last ``k`` axes input bits,
    both most-significant-bit first (numpy's row-major reshape order).
    """
    if matrix.shape != (2**k, 2**k):
        raise ValueError("gate matrix does not match the number of qubits")
    return np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))


def _contract(tensor: np.ndarray, operator: np.ndarray, axes: Sequence[int]) -> np.ndarray:
    """Contract a rank-``2m`` operator tensor against ``m`` axes of ``tensor``.

    The operator's last ``m`` axes are the input indices; the resulting
    output axes are moved back to the contracted positions, so the tensor's
    axis layout is preserved.
    """
    m = len(axes)
    moved = np.tensordot(operator, tensor, axes=(list(range(m, 2 * m)), list(axes)))
    return np.moveaxis(moved, range(m), axes)


def apply_gate_tensor(
    tensor: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
    axis_offset: int = 0,
    conjugate: bool = False,
) -> np.ndarray:
    """Contract a k-qubit gate against the target axes of a state tensor.

    ``tensor`` must already be reshaped so that axes ``axis_offset`` to
    ``axis_offset + num_qubits - 1`` are the qubit axes (MSB first); any
    remaining axes are carried through unchanged.  ``axis_offset`` and
    ``conjugate`` support the density-matrix update ``U rho U^dag``, where
    the conjugated gate acts on the column axes.
    """
    k = len(qubits)
    gate = _gate_tensor(matrix, k)
    if conjugate:
        gate = gate.conj()
    # State axes matching the gate's input bits, MSB (qubits[k-1]) first.
    axes = [axis_offset + num_qubits - 1 - q for q in reversed(qubits)]
    return _contract(tensor, gate, axes)


def apply_gate_statevector(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a k-qubit gate to a flat ``2^n`` statevector; returns a flat array."""
    tensor = np.asarray(state, dtype=complex).reshape((2,) * num_qubits)
    tensor = apply_gate_tensor(tensor, matrix, qubits, num_qubits)
    return tensor.reshape(-1)


#: Memoized channel superoperators, keyed by the operators' raw bytes.
#: The Kraus builders in :mod:`repro.simulator.noise` memoize their (few)
#: distinct channels, so this cache stays small and hits almost always.
_SUPEROP_CACHE: Dict[tuple, np.ndarray] = {}
_SUPEROP_CACHE_LIMIT = 4096


def _channel_superoperator(kraus: Sequence[np.ndarray], k: int) -> np.ndarray:
    """Rank-``4k`` tensor of ``rho -> sum_i K_i rho K_i^dag``.

    ``S = sum_i K_i (x) conj(K_i)`` maps the stacked (row, column) indices,
    so one contraction applies the whole channel — instead of two
    contractions per Kraus operator — which is what keeps the local path
    faster than the dense one even on 2-3 qubit registers.
    """
    dim = 2**k
    key = tuple(operator.tobytes() for operator in kraus)
    cached = _SUPEROP_CACHE.get(key)
    if cached is not None:
        return cached
    superop = np.zeros((dim * dim, dim * dim), dtype=complex)
    for operator in kraus:
        operator = np.asarray(operator, dtype=complex)
        if operator.shape != (dim, dim):
            raise ValueError("Kraus operator does not match the number of qubits")
        superop += np.kron(operator, operator.conj())
    if len(_SUPEROP_CACHE) >= _SUPEROP_CACHE_LIMIT:
        _SUPEROP_CACHE.clear()
    tensor = superop.reshape((2,) * (4 * k))
    _SUPEROP_CACHE[key] = tensor
    return tensor


def _density_axes(qubits: Sequence[int], num_qubits: int) -> List[int]:
    """Row axes then column axes of ``qubits`` in a rank-``2n`` rho tensor."""
    rows = [num_qubits - 1 - q for q in reversed(qubits)]
    return rows + [num_qubits + axis for axis in rows]


def apply_unitary_density(
    rho: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``U rho U^dag`` locally on a ``2^n x 2^n`` density matrix."""
    dim = 2**num_qubits
    tensor = np.asarray(rho, dtype=complex).reshape((2,) * (2 * num_qubits))
    # (U rho U^dag)[r, c] = U[r, r'] rho[r', c'] conj(U[c, c']); the
    # superoperator U (x) U* applies both factors in one contraction.
    superop = _channel_superoperator((np.asarray(matrix, dtype=complex),), len(qubits))
    tensor = _contract(tensor, superop, _density_axes(qubits, num_qubits))
    return tensor.reshape(dim, dim)


def apply_kraus_density(
    rho: np.ndarray,
    kraus: Sequence[np.ndarray],
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a Kraus channel ``sum_k K rho K^dag`` locally on the density matrix."""
    if not kraus:
        raise ValueError("a Kraus channel needs at least one operator")
    dim = 2**num_qubits
    tensor = np.asarray(rho, dtype=complex).reshape((2,) * (2 * num_qubits))
    superop = _channel_superoperator(kraus, len(qubits))
    tensor = _contract(tensor, superop, _density_axes(qubits, num_qubits))
    return tensor.reshape(dim, dim)


def probabilities_vector(state: np.ndarray) -> np.ndarray:
    """Normalized computational-basis probabilities of a statevector."""
    probabilities = np.abs(np.asarray(state, dtype=complex)) ** 2
    total = probabilities.sum()
    if total <= 0:
        raise ValueError("state has no probability mass")
    return probabilities / total


def sample_counts(
    probabilities: Dict[str, float],
    shots: int,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Draw ``shots`` measurement outcomes from a distribution in one batch.

    One multinomial draw replaces ``shots`` individual samples, so
    Hellinger/fidelity benchmarks that compare sampled histograms against
    exact distributions no longer pay per-shot Python overhead.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    keys: List[str] = list(probabilities)
    weights = np.array([probabilities[key] for key in keys], dtype=float)
    if weights.size == 0 or weights.sum() <= 0:
        raise ValueError("distribution has no probability mass")
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    counts = rng.multinomial(shots, weights)
    return {key: int(count) for key, count in zip(keys, counts) if count}
