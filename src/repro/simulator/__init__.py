"""Quantum circuit simulation with and without noise.

Two simulators are provided:

* :func:`simulate_statevector` -- exact, noiseless statevector evolution
  (used for the ideal reference distribution);
* :class:`DensityMatrixSimulator` -- density-matrix evolution with a
  depolarizing channel after every gate (strength matched to the gate
  fidelity of the target) and amplitude/phase damping applied to idle
  qubits for the scheduled idle durations (T1/T2 thermal relaxation).

The noisy model mirrors Section V.B of the paper: "errors incurred by a
depolarization channel that corresponds to the individual gate fidelities
and thermal relaxation that corresponds to the qubit idle time".
:func:`hellinger_fidelity` compares the resulting measurement
distributions.
"""

from repro.simulator.statevector import (
    circuit_probabilities,
    measurement_probabilities,
    simulate_statevector,
    simulate_statevector_dense,
    statevector_probabilities,
)
from repro.simulator.density import DensityMatrixSimulator, NoisySimulationResult
from repro.simulator.kernels import (
    apply_gate_statevector,
    apply_kraus_density,
    apply_unitary_density,
    sample_counts,
)
from repro.simulator.noise import (
    amplitude_damping_kraus,
    depolarizing_kraus,
    depolarizing_strength_for_fidelity,
    phase_damping_kraus,
    thermal_relaxation_kraus,
)
from repro.simulator.metrics import hellinger_distance, hellinger_fidelity, total_variation_distance

__all__ = [
    "simulate_statevector",
    "simulate_statevector_dense",
    "measurement_probabilities",
    "circuit_probabilities",
    "statevector_probabilities",
    "apply_gate_statevector",
    "apply_unitary_density",
    "apply_kraus_density",
    "sample_counts",
    "DensityMatrixSimulator",
    "NoisySimulationResult",
    "depolarizing_kraus",
    "depolarizing_strength_for_fidelity",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "thermal_relaxation_kraus",
    "hellinger_distance",
    "hellinger_fidelity",
    "total_variation_distance",
]
