"""Noiseless statevector simulation.

The default :func:`simulate_statevector` applies every gate locally with
the tensor-contraction kernels (``O(2^n)`` per 1q/2q gate); the legacy
full-matrix path is kept as :func:`simulate_statevector_dense` and serves
as the reference oracle in the kernel-equivalence tests and the perf
harness baseline.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import expand_gate_matrix
from repro.simulator.kernels import apply_gate_statevector, probabilities_vector


def _initial_state(num_qubits: int, initial_state: Optional[np.ndarray]) -> np.ndarray:
    dimension = 2**num_qubits
    if initial_state is None:
        state = np.zeros(dimension, dtype=complex)
        state[0] = 1.0
        return state
    state = np.asarray(initial_state, dtype=complex).copy()
    if state.shape != (dimension,):
        raise ValueError("initial state has the wrong dimension")
    return state


def simulate_statevector(
    circuit: QuantumCircuit, initial_state: Optional[np.ndarray] = None
) -> np.ndarray:
    """Evolve |0...0> (or ``initial_state``) through the circuit.

    Returns the final statevector in little-endian basis ordering.
    """
    state = _initial_state(circuit.num_qubits, initial_state)
    for instruction in circuit.instructions:
        state = apply_gate_statevector(
            state, instruction.gate.to_matrix(), instruction.qubits, circuit.num_qubits
        )
    return state


def simulate_statevector_dense(
    circuit: QuantumCircuit, initial_state: Optional[np.ndarray] = None
) -> np.ndarray:
    """Legacy dense-matrix statevector evolution (reference oracle).

    Expands every gate into the full ``2^n x 2^n`` register matrix before
    multiplying; asymptotically wasteful but trivially correct, so the
    equivalence tests and the perf-harness baseline compare against it.
    """
    state = _initial_state(circuit.num_qubits, initial_state)
    for instruction in circuit.instructions:
        matrix = expand_gate_matrix(
            instruction.gate.to_matrix(), instruction.qubits, circuit.num_qubits
        )
        state = matrix @ state
    return state


def _distribution_from_vector(
    probabilities: np.ndarray, num_qubits: int, cutoff: float = 1e-14
) -> Dict[str, float]:
    (support,) = np.nonzero(probabilities > cutoff)
    return {
        format(index, f"0{num_qubits}b"): float(probabilities[index])
        for index in support
    }


def statevector_probabilities(
    state: np.ndarray, num_qubits: Optional[int] = None
) -> Dict[str, float]:
    """Computational-basis outcome distribution of a statevector.

    Keys are little-endian bitstrings (qubit 0 is the rightmost character).
    """
    state = np.asarray(state, dtype=complex)
    if num_qubits is None:
        num_qubits = int(round(np.log2(state.shape[0])))
    if state.shape != (2**num_qubits,):
        raise ValueError("state dimension is not a power of two matching num_qubits")
    return _distribution_from_vector(probabilities_vector(state), num_qubits)


def circuit_probabilities(circuit: QuantumCircuit) -> Dict[str, float]:
    """Simulate a circuit noiselessly and return its outcome distribution."""
    return statevector_probabilities(simulate_statevector(circuit), circuit.num_qubits)


def measurement_probabilities(
    state_or_circuit, num_qubits: Optional[int] = None
) -> Dict[str, float]:
    """Return the computational-basis outcome distribution.

    .. deprecated::
        The dual-mode argument is deprecated; call
        :func:`circuit_probabilities` for circuits or
        :func:`statevector_probabilities` for statevectors instead.
    """
    if isinstance(state_or_circuit, QuantumCircuit):
        warnings.warn(
            "measurement_probabilities(circuit) is deprecated; "
            "use circuit_probabilities(circuit)",
            DeprecationWarning,
            stacklevel=2,
        )
        return circuit_probabilities(state_or_circuit)
    warnings.warn(
        "measurement_probabilities(state) is deprecated; "
        "use statevector_probabilities(state)",
        DeprecationWarning,
        stacklevel=2,
    )
    return statevector_probabilities(state_or_circuit, num_qubits)
