"""Noiseless statevector simulation."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.unitary import expand_gate_matrix


def simulate_statevector(
    circuit: QuantumCircuit, initial_state: Optional[np.ndarray] = None
) -> np.ndarray:
    """Evolve |0...0> (or ``initial_state``) through the circuit.

    Returns the final statevector in little-endian basis ordering.
    """
    dimension = 2**circuit.num_qubits
    if initial_state is None:
        state = np.zeros(dimension, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial_state, dtype=complex).copy()
        if state.shape != (dimension,):
            raise ValueError("initial state has the wrong dimension")
    for instruction in circuit.instructions:
        matrix = expand_gate_matrix(
            instruction.gate.to_matrix(), instruction.qubits, circuit.num_qubits
        )
        state = matrix @ state
    return state


def measurement_probabilities(
    state_or_circuit, num_qubits: Optional[int] = None
) -> Dict[str, float]:
    """Return the computational-basis outcome distribution.

    Accepts either a statevector or a circuit (which is simulated first).
    Keys are little-endian bitstrings (qubit 0 is the rightmost character).
    """
    if isinstance(state_or_circuit, QuantumCircuit):
        state = simulate_statevector(state_or_circuit)
        num_qubits = state_or_circuit.num_qubits
    else:
        state = np.asarray(state_or_circuit, dtype=complex)
        if num_qubits is None:
            num_qubits = int(round(np.log2(state.shape[0])))
    probabilities = np.abs(state) ** 2
    probabilities = probabilities / probabilities.sum()
    return {
        format(index, f"0{num_qubits}b"): float(probabilities[index])
        for index in range(len(probabilities))
        if probabilities[index] > 1e-14
    }
