"""Noise channels as Kraus operators.

All channels act on a single qubit; multi-qubit gates use the single-qubit
depolarizing channel applied independently to each participating qubit with
a strength matched to the gate fidelity.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Tuple

import numpy as np


def _frozen(*operators: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Mark cached Kraus operators read-only so sharing them is safe."""
    for operator in operators:
        operator.setflags(write=False)
    return operators


def depolarizing_strength_for_fidelity(fidelity: float, num_qubits: int) -> float:
    """Depolarizing probability reproducing an average gate fidelity.

    For a depolarizing channel of probability ``p`` on a ``d``-dimensional
    system, the average gate fidelity is ``1 - p (d^2 - 1) / d^2``... we use
    the simpler (and common in transpiler cost models) convention that the
    channel is applied with probability ``p = 1 - fidelity`` scaled to the
    number of qubits the gate touches, so that the success probability of
    the gate equals its fidelity.
    """
    if not 0 < fidelity <= 1:
        raise ValueError("fidelity must lie in (0, 1]")
    error = 1.0 - fidelity
    return min(1.0, error / max(1, num_qubits))


@lru_cache(maxsize=4096)
def _depolarizing_kraus_cached(probability: float) -> Tuple[np.ndarray, ...]:
    identity = np.eye(2, dtype=complex)
    pauli_x = np.array([[0, 1], [1, 0]], dtype=complex)
    pauli_y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    pauli_z = np.diag([1, -1]).astype(complex)
    return _frozen(
        math.sqrt(1 - probability) * identity,
        math.sqrt(probability / 3) * pauli_x,
        math.sqrt(probability / 3) * pauli_y,
        math.sqrt(probability / 3) * pauli_z,
    )


def depolarizing_kraus(probability: float) -> List[np.ndarray]:
    """Single-qubit depolarizing channel with the given error probability.

    Channel construction is memoized (a target has only a handful of
    distinct gate fidelities, so the noisy simulator asks for the same
    strengths over and over); callers get fresh writable copies so the
    cached originals cannot be mutated.
    """
    if not 0 <= probability <= 1:
        raise ValueError("probability must lie in [0, 1]")
    return [operator.copy() for operator in _depolarizing_kraus_cached(float(probability))]


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Amplitude damping (T1 relaxation) with decay probability ``gamma``."""
    if not 0 <= gamma <= 1:
        raise ValueError("gamma must lie in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> List[np.ndarray]:
    """Pure dephasing with phase-flip-equivalent probability ``lam``."""
    if not 0 <= lam <= 1:
        raise ValueError("lambda must lie in [0, 1]")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def thermal_relaxation_kraus(duration: float, t1: float, t2: float) -> List[np.ndarray]:
    """Thermal relaxation over ``duration`` for coherence times T1, T2.

    Modeled as amplitude damping with ``gamma = 1 - exp(-t/T1)`` composed
    with pure dephasing such that the total off-diagonal decay matches
    ``exp(-t/T2)`` (requires the physical condition ``T2 <= 2 T1``).
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if t1 <= 0 or t2 <= 0:
        raise ValueError("coherence times must be positive")
    if t2 > 2 * t1 + 1e-9:
        raise ValueError("thermal relaxation requires T2 <= 2*T1")
    if duration == 0:
        return [np.eye(2, dtype=complex)]
    return [
        operator.copy()
        for operator in _thermal_relaxation_cached(float(duration), float(t1), float(t2))
    ]


@lru_cache(maxsize=4096)
def _thermal_relaxation_cached(
    duration: float, t1: float, t2: float
) -> Tuple[np.ndarray, ...]:
    gamma = 1.0 - math.exp(-duration / t1)
    total_dephasing = math.exp(-duration / t2)
    # Off-diagonal decay from amplitude damping alone is sqrt(1 - gamma).
    residual = total_dephasing / math.sqrt(1.0 - gamma) if gamma < 1 else 0.0
    residual = min(1.0, max(0.0, residual))
    lam = 1.0 - residual**2
    kraus: List[np.ndarray] = []
    for damping in amplitude_damping_kraus(gamma):
        for dephasing in phase_damping_kraus(lam):
            operator = dephasing @ damping
            if np.abs(operator).max() > 1e-12:
                kraus.append(operator)
    return _frozen(*kraus)
