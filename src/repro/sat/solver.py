"""A conflict-driven clause-learning (CDCL) SAT solver.

The solver follows the architecture of MiniSat:

* two-watched-literal unit propagation,
* first unique implication point (1UIP) conflict analysis,
* VSIDS-style exponential variable activity with phase saving,
* Luby-sequence restarts,
* incremental solving under assumptions with final-conflict (unsat core)
  extraction,
* optional learned-clause garbage collection driven by clause activity.

Variables are positive integers assigned by the caller (gaps are allowed),
literals are non-zero signed integers.  The solver is deliberately written in
plain Python with flat data structures (lists indexed by variable number) so
that the hot propagation loop stays reasonably fast without any native
extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.resilience.budget import current_budget
from repro.resilience.faults import active_fault_plan
from repro.telemetry.instruments import record_sat_progress
from repro.telemetry.registry import telemetry_enabled
from repro.trace.tracer import current_tracer

#: Conflict-count granularity of the sampled ``sat.conflicts`` trace
#: events: one milestone event per this many conflicts keeps traces
#: bounded on conflict-heavy instances.
TRACE_CONFLICT_MILESTONE = 512


class SolverResult(Enum):
    """Tri-state result of a :meth:`Solver.solve` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStatistics:
    """Counters describing the work performed by the solver."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the statistics as a plain dictionary."""
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "max_decision_level": self.max_decision_level,
        }


@dataclass
class _Clause:
    """Internal clause representation.

    Literals are stored in the solver's internal encoding (see
    :meth:`Solver._lit_to_internal`).  The first two literals are the watched
    literals.
    """

    literals: List[int]
    learned: bool = False
    activity: float = 0.0

    def __len__(self) -> int:
        return len(self.literals)


# Truth values for the internal assignment array.
_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby sequence.

    The Luby sequence (1, 1, 2, 1, 1, 2, 4, ...) is the standard universal
    restart schedule; restart intervals are obtained by scaling it with a
    base conflict budget.
    """
    if index <= 0:
        raise ValueError("Luby index must be positive")
    # MiniSat-style computation on the 0-based index.
    position = index - 1
    size, sequence = 1, 0
    while size < position + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != position:
        size = (size - 1) // 2
        sequence -= 1
        position = position % size
    return 1 << sequence


class Solver:
    """Incremental CDCL SAT solver.

    Parameters
    ----------
    restart_base:
        Base number of conflicts between restarts; multiplied by the Luby
        sequence.
    var_decay:
        Multiplicative decay applied to VSIDS activities after each conflict.
    clause_decay:
        Multiplicative decay applied to learned clause activities.
    max_conflicts:
        Optional global conflict budget; :meth:`solve` returns
        :data:`SolverResult.UNKNOWN` when exceeded.
    """

    def __init__(
        self,
        restart_base: int = 100,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        max_conflicts: Optional[int] = None,
    ) -> None:
        self._restart_base = restart_base
        self._var_decay = var_decay
        self._clause_decay = clause_decay
        self._max_conflicts = max_conflicts

        # Mapping between external variable numbers and internal indices.
        self._ext_to_int: Dict[int, int] = {}
        self._int_to_ext: List[int] = [0]  # index 0 unused

        # Per-variable state, indexed by internal variable index.
        self._assignment: List[int] = [_UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]

        # Watch lists indexed by internal literal encoding (2*v or 2*v+1).
        self._watches: List[List[_Clause]] = [[], []]

        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagation_head = 0

        self._var_inc = 1.0
        self._clause_inc = 1.0

        self._ok = True  # False once the clause database is trivially unsat.
        self._model: Dict[int, bool] = {}
        self._failed_assumptions: List[int] = []
        self._assumption_levels_storage: List[int] = []

        self.statistics = SolverStatistics()

    # ------------------------------------------------------------------
    # Variable and literal bookkeeping
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate and return a fresh external variable number."""
        candidate = len(self._int_to_ext)
        while candidate in self._ext_to_int:
            candidate += 1
        self._ensure_var(candidate)
        return candidate

    def num_vars(self) -> int:
        """Return the number of registered variables."""
        return len(self._int_to_ext) - 1

    def num_clauses(self) -> int:
        """Return the number of problem (non-learned) clauses."""
        return len(self._clauses)

    def _ensure_var(self, ext_var: int) -> int:
        if ext_var <= 0:
            raise ValueError(f"variables must be positive integers, got {ext_var}")
        existing = self._ext_to_int.get(ext_var)
        if existing is not None:
            return existing
        index = len(self._int_to_ext)
        self._ext_to_int[ext_var] = index
        self._int_to_ext.append(ext_var)
        self._assignment.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watches.append([])
        self._watches.append([])
        return index

    def _lit_to_internal(self, lit: int) -> int:
        """Convert an external signed literal to the internal encoding."""
        if lit == 0:
            raise ValueError("0 is not a valid literal")
        var = self._ensure_var(abs(lit))
        return 2 * var + (1 if lit < 0 else 0)

    def _lit_to_external(self, internal: int) -> int:
        var = internal >> 1
        ext = self._int_to_ext[var]
        return -ext if internal & 1 else ext

    @staticmethod
    def _negate(internal: int) -> int:
        return internal ^ 1

    def _value_of_lit(self, internal: int) -> int:
        value = self._assignment[internal >> 1]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return -value if internal & 1 else value

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause given as an iterable of signed external literals.

        Returns ``False`` when the clause database has become trivially
        unsatisfiable (empty clause or conflicting units at level 0).
        """
        if not self._ok:
            return False
        if self._trail_lim:
            raise RuntimeError("clauses may only be added at decision level 0")

        seen = set()
        internal: List[int] = []
        tautology = False
        for lit in literals:
            ilit = self._lit_to_internal(lit)
            if self._negate(ilit) in seen:
                tautology = True
                break
            if ilit in seen:
                continue
            value = self._value_of_lit(ilit)
            if value == _TRUE:
                tautology = True
                break
            if value == _FALSE:
                continue  # falsified at level 0: drop the literal
            seen.add(ilit)
            internal.append(ilit)
        if tautology:
            return True

        if not internal:
            self._ok = False
            return False
        if len(internal) == 1:
            if not self._enqueue(internal[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True

        clause = _Clause(internal)
        self._attach_clause(clause)
        self._clauses.append(clause)
        return True

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        """Add several clauses; returns ``False`` if the database is unsat."""
        result = True
        for clause in clauses:
            result = self.add_clause(clause) and result
        return result

    def _attach_clause(self, clause: _Clause) -> None:
        self._watches[self._negate(clause.literals[0])].append(clause)
        self._watches[self._negate(clause.literals[1])].append(clause)

    # ------------------------------------------------------------------
    # Assignment trail
    # ------------------------------------------------------------------
    def _enqueue(self, internal: int, reason: Optional[_Clause]) -> bool:
        value = self._value_of_lit(internal)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = internal >> 1
        self._assignment[var] = _FALSE if internal & 1 else _TRUE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = not (internal & 1)
        self._trail.append(internal)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Perform unit propagation; return a conflicting clause or ``None``."""
        while self._propagation_head < len(self._trail):
            lit = self._trail[self._propagation_head]
            self._propagation_head += 1
            self.statistics.propagations += 1

            watch_list = self._watches[lit]
            new_watch_list: List[_Clause] = []
            index = 0
            size = len(watch_list)
            while index < size:
                clause = watch_list[index]
                index += 1
                lits = clause.literals
                # Ensure the falsified literal is at position 1.
                false_lit = self._negate(lit)
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value_of_lit(first) == _TRUE:
                    new_watch_list.append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(lits)):
                    if self._value_of_lit(lits[position]) != _FALSE:
                        lits[1], lits[position] = lits[position], lits[1]
                        self._watches[self._negate(lits[1])].append(clause)
                        found = True
                        break
                if found:
                    continue
                new_watch_list.append(clause)
                if not self._enqueue(first, clause):
                    # Conflict: keep the remaining watchers and report.
                    new_watch_list.extend(watch_list[index:])
                    self._watches[lit] = new_watch_list
                    return clause
            self._watches[lit] = new_watch_list
        return None

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for internal in reversed(self._trail[limit:]):
            var = internal >> 1
            self._assignment[var] = _UNASSIGNED
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._propagation_head = min(self._propagation_head, len(self._trail))

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(1, len(self._activity)):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._clause_inc
        if clause.activity > 1e20:
            for learned in self._learned:
                learned.activity *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._clause_inc /= self._clause_decay

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """1UIP conflict analysis.

        Returns the learned clause (internal literals, asserting literal
        first) and the backtrack level.
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * len(self._int_to_ext)
        counter = 0
        current = conflict
        trail_index = len(self._trail) - 1
        asserting_lit = -1
        level = self._decision_level()

        while True:
            self._bump_clause(current) if current.learned else None
            for lit in current.literals:
                if lit == asserting_lit:
                    continue
                var = lit >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._level[var] == level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find the next literal on the trail that participates.
            while not seen[self._trail[trail_index] >> 1]:
                trail_index -= 1
            asserting_internal = self._trail[trail_index]
            var = asserting_internal >> 1
            seen[var] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                asserting_lit = self._negate(asserting_internal)
                learned[0] = asserting_lit
                break
            reason = self._reason[var]
            assert reason is not None, "decision literal reached before 1UIP"
            current = reason
            asserting_lit = asserting_internal

        # Clause minimization: drop literals implied by the rest of the clause.
        learned = self._minimize_learned(learned, seen)

        if len(learned) == 1:
            backtrack_level = 0
        else:
            # Find the literal with the second highest decision level.
            max_index = 1
            for position in range(2, len(learned)):
                if self._level[learned[position] >> 1] > self._level[learned[max_index] >> 1]:
                    max_index = position
            learned[1], learned[max_index] = learned[max_index], learned[1]
            backtrack_level = self._level[learned[1] >> 1]
        return learned, backtrack_level

    def _minimize_learned(self, learned: List[int], seen: List[bool]) -> List[int]:
        """Cheap recursive clause minimization (local form)."""
        for lit in learned[1:]:
            seen[lit >> 1] = True
        minimized = [learned[0]]
        for lit in learned[1:]:
            var = lit >> 1
            reason = self._reason[var]
            if reason is None:
                minimized.append(lit)
                continue
            redundant = True
            for other in reason.literals:
                other_var = other >> 1
                if other_var == var:
                    continue
                if not seen[other_var] and self._level[other_var] > 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(lit)
        for lit in learned[1:]:
            seen[lit >> 1] = False
        return minimized

    # ------------------------------------------------------------------
    # Learned clause database reduction
    # ------------------------------------------------------------------
    def _reduce_learned(self) -> None:
        """Remove roughly half of the inactive learned clauses."""
        self._learned.sort(key=lambda clause: clause.activity)
        keep_from = len(self._learned) // 2
        removed: List[_Clause] = []
        kept: List[_Clause] = []
        for index, clause in enumerate(self._learned):
            locked = any(self._reason[lit >> 1] is clause for lit in clause.literals[:1])
            if index < keep_from and len(clause) > 2 and not locked:
                removed.append(clause)
            else:
                kept.append(clause)
        for clause in removed:
            self._detach_clause(clause)
        self.statistics.deleted_clauses += len(removed)
        self._learned = kept

    def _detach_clause(self, clause: _Clause) -> None:
        for watched in (clause.literals[0], clause.literals[1]):
            watch_list = self._watches[self._negate(watched)]
            try:
                watch_list.remove(clause)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------
    def _pick_branch_literal(self) -> Optional[int]:
        best_var = -1
        best_activity = -1.0
        for var in range(1, len(self._int_to_ext)):
            if self._assignment[var] == _UNASSIGNED and self._activity[var] > best_activity:
                best_activity = self._activity[var]
                best_var = var
        if best_var < 0:
            return None
        phase = self._phase[best_var]
        return 2 * best_var + (0 if phase else 1)

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Solve the current formula under the given assumptions.

        Returns ``True`` for satisfiable, ``False`` for unsatisfiable.  Use
        :meth:`solve_limited` to obtain a tri-state result honouring conflict
        budgets.
        """
        result = self.solve_limited(assumptions)
        if result == SolverResult.UNKNOWN:
            raise RuntimeError("conflict budget exhausted before a result was reached")
        return result == SolverResult.SAT

    def solve_limited(self, assumptions: Sequence[int] = ()) -> SolverResult:
        """Solve and return a :class:`SolverResult` (may be ``UNKNOWN``)."""
        self._model = {}
        self._failed_assumptions = []
        if not self._ok:
            return SolverResult.UNSAT

        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SolverResult.UNSAT

        # One flag read when tracing is off; milestone-sampled events when on.
        tracer = current_tracer()
        traced = tracer.enabled
        # The ambient compile budget (deadline/cancellation) and fault
        # plan are likewise fetched once per solve; the per-conflict cost
        # in the common case is a single `is not None` test each.
        budget = current_budget()
        fault_plan = active_fault_plan()
        # Telemetry mirrors the tracing discipline: the flag is read once
        # per solve, deltas flush at the same conflict milestones (live
        # rates during long solves) and once more on exit.
        metered = telemetry_enabled()
        stats = self.statistics
        flushed = (stats.conflicts, stats.propagations, stats.decisions,
                   stats.restarts)

        internal_assumptions = [self._lit_to_internal(lit) for lit in assumptions]
        conflicts_since_restart = 0
        restart_index = 1
        restart_limit = self._restart_base * luby(restart_index)
        learned_limit = max(100, len(self._clauses) // 3)

        try:
            while True:
                conflict = self._propagate()
                if conflict is not None:
                    self.statistics.conflicts += 1
                    conflicts_since_restart += 1
                    if self._decision_level() == 0:
                        self._ok = False
                        return SolverResult.UNSAT
                    if self._decision_level() <= len(self._assumption_levels):
                        # Conflict within the assumption prefix: extract the core.
                        self._failed_assumptions = self._analyze_final(conflict, internal_assumptions)
                        self._backtrack(0)
                        return SolverResult.UNSAT
                    learned, backtrack_level = self._analyze(conflict)
                    backtrack_level = max(backtrack_level, len(self._assumption_levels))
                    self._backtrack(backtrack_level)
                    self._install_learned(learned)
                    self._decay_var_activity()
                    self._decay_clause_activity()
                    if (
                        self._max_conflicts is not None
                        and self.statistics.conflicts >= self._max_conflicts
                    ):
                        self._backtrack(0)
                        return SolverResult.UNKNOWN
                    if budget is not None:
                        budget.charge("sat.conflict", conflicts=1)
                    if fault_plan is not None:
                        fault_plan.delay("sat.conflict")
                    if traced and self.statistics.conflicts % TRACE_CONFLICT_MILESTONE == 0:
                        tracer.event(
                            "sat.conflicts", "solver",
                            d_conflicts=TRACE_CONFLICT_MILESTONE,
                            conflicts=self.statistics.conflicts,
                            learned=len(self._learned),
                            decisions=self.statistics.decisions,
                        )
                    if metered and stats.conflicts % TRACE_CONFLICT_MILESTONE == 0:
                        record_sat_progress(
                            conflicts=stats.conflicts - flushed[0],
                            propagations=stats.propagations - flushed[1],
                            decisions=stats.decisions - flushed[2],
                            restarts=stats.restarts - flushed[3],
                            learned=len(self._learned),
                        )
                        flushed = (stats.conflicts, stats.propagations,
                                   stats.decisions, stats.restarts)
                    if conflicts_since_restart >= restart_limit:
                        self.statistics.restarts += 1
                        restart_index += 1
                        restart_limit = self._restart_base * luby(restart_index)
                        conflicts_since_restart = 0
                        self._backtrack(len(self._assumption_levels))
                        if traced:
                            tracer.event(
                                "sat.restart", "solver",
                                d_restarts=1,
                                restarts=self.statistics.restarts,
                                conflicts=self.statistics.conflicts,
                                next_limit=restart_limit,
                            )
                    if len(self._learned) > learned_limit:
                        learned_before = len(self._learned)
                        self._reduce_learned()
                        learned_limit = int(learned_limit * 1.3) + 10
                        if traced:
                            tracer.event(
                                "sat.reduce_db", "solver",
                                d_deleted=learned_before - len(self._learned),
                                learned=len(self._learned),
                                next_limit=learned_limit,
                            )
                    continue

                # No conflict: extend assumptions first, then decide.
                if len(self._assumption_levels) < len(internal_assumptions):
                    next_assumption = internal_assumptions[len(self._assumption_levels)]
                    value = self._value_of_lit(next_assumption)
                    if value == _FALSE:
                        self._failed_assumptions = self._analyze_final_assigned(
                            next_assumption, internal_assumptions
                        )
                        self._backtrack(0)
                        return SolverResult.UNSAT
                    self._new_decision_level()
                    self._assumption_levels.append(self._decision_level())
                    if value == _UNASSIGNED:
                        self._enqueue(next_assumption, None)
                    continue

                decision = self._pick_branch_literal()
                if decision is None:
                    self._store_model()
                    self._backtrack(0)
                    return SolverResult.SAT
                self.statistics.decisions += 1
                self._new_decision_level()
                self.statistics.max_decision_level = max(
                    self.statistics.max_decision_level, self._decision_level()
                )
                self._enqueue(decision, None)
        finally:
            # Flush any unreported progress exactly once per solve, even
            # when the budget aborts mid-search with CompileInterrupted.
            if metered:
                record_sat_progress(
                    conflicts=stats.conflicts - flushed[0],
                    propagations=stats.propagations - flushed[1],
                    decisions=stats.decisions - flushed[2],
                    restarts=stats.restarts - flushed[3],
                    learned=len(self._learned),
                )

    def _install_learned(self, learned: List[int]) -> None:
        self.statistics.learned_clauses += 1
        if len(learned) == 1:
            self._enqueue(learned[0], None)
            return
        clause = _Clause(list(learned), learned=True)
        self._attach_clause(clause)
        self._learned.append(clause)
        self._bump_clause(clause)
        self._enqueue(learned[0], clause)

    # The assumption handling keeps one decision level per assumption.
    @property
    def _assumption_levels(self) -> List[int]:
        # Reset the bookkeeping whenever the trail has been rewound below it.
        while (
            self._assumption_levels_storage
            and self._assumption_levels_storage[-1] > self._decision_level()
        ):
            self._assumption_levels_storage.pop()
        return self._assumption_levels_storage

    def _analyze_final(
        self, conflict: _Clause, assumptions: Sequence[int]
    ) -> List[int]:
        """Collect the subset of assumptions responsible for a conflict."""
        assumption_vars = {lit >> 1 for lit in assumptions}
        involved: set[int] = set()
        seen: set[int] = set()
        queue = [lit >> 1 for lit in conflict.literals]
        while queue:
            var = queue.pop()
            if var in seen or self._level[var] == 0:
                continue
            seen.add(var)
            reason = self._reason[var]
            if reason is None:
                if var in assumption_vars:
                    involved.add(var)
                continue
            queue.extend(other >> 1 for other in reason.literals if (other >> 1) != var)
        return [
            self._lit_to_external(lit)
            for lit in assumptions
            if (lit >> 1) in involved
        ]

    def _analyze_final_assigned(
        self, failed: int, assumptions: Sequence[int]
    ) -> List[int]:
        """Assumption ``failed`` is already false; trace back its reasons."""
        assumption_vars = {lit >> 1 for lit in assumptions}
        involved = {failed >> 1} if (failed >> 1) in assumption_vars else set()
        seen: set[int] = set()
        queue = [failed >> 1]
        while queue:
            var = queue.pop()
            if var in seen or self._level[var] == 0:
                continue
            seen.add(var)
            reason = self._reason[var]
            if reason is None:
                if var in assumption_vars:
                    involved.add(var)
                continue
            queue.extend(other >> 1 for other in reason.literals if (other >> 1) != var)
        result = [
            self._lit_to_external(lit)
            for lit in assumptions
            if (lit >> 1) in involved
        ]
        failed_ext = self._lit_to_external(failed)
        if failed_ext not in result and -failed_ext not in result:
            result.append(failed_ext)
        return result

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def _store_model(self) -> None:
        self._model = {}
        for var in range(1, len(self._int_to_ext)):
            value = self._assignment[var]
            if value != _UNASSIGNED:
                self._model[self._int_to_ext[var]] = value == _TRUE
            else:
                # Unconstrained variable: default to the saved phase.
                self._model[self._int_to_ext[var]] = self._phase[var]

    def model(self) -> Dict[int, bool]:
        """Return the last satisfying assignment as ``{variable: bool}``."""
        return dict(self._model)

    def model_value(self, variable: int) -> bool:
        """Return the truth value of ``variable`` in the last model."""
        if variable <= 0:
            raise ValueError("variables are positive integers")
        if variable not in self._model:
            raise KeyError(f"variable {variable} not present in the model")
        return self._model[variable]

    def failed_assumptions(self) -> List[int]:
        """Return the subset of assumptions proven inconsistent (unsat core)."""
        return list(self._failed_assumptions)
