"""DIMACS CNF parsing and serialization.

The DIMACS CNF format is the lingua franca of SAT solvers; supporting it
makes the :class:`repro.sat.Solver` easy to exercise against standard
benchmark instances and simplifies debugging (a failing SMT query can be
dumped and inspected with any off-the-shelf solver).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into ``(num_vars, clauses)``.

    Comment lines (``c ...``) and the problem line (``p cnf V C``) are
    handled; clauses may span multiple lines and are terminated by ``0``.

    Raises
    ------
    ValueError
        If the problem line is malformed or a literal exceeds the declared
        variable count.
    """
    num_vars = 0
    declared_clauses: int | None = None
    clauses: List[List[int]] = []
    current: List[int] = []
    seen_problem_line = False

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            seen_problem_line = True
            continue
        if line.startswith("%"):
            break  # SATLIB-style trailer
        for token in line.split():
            literal = int(token)
            if literal == 0:
                clauses.append(current)
                current = []
            else:
                if seen_problem_line and abs(literal) > num_vars:
                    raise ValueError(
                        f"literal {literal} exceeds declared variable count {num_vars}"
                    )
                current.append(literal)
    if current:
        clauses.append(current)
    if not seen_problem_line:
        num_vars = max((abs(lit) for clause in clauses for lit in clause), default=0)
    if declared_clauses is not None and declared_clauses != len(clauses):
        # Tolerate the mismatch (common in the wild) but keep the parsed set.
        pass
    return num_vars, clauses


def to_dimacs(num_vars: int, clauses: Iterable[Iterable[int]]) -> str:
    """Serialize clauses to DIMACS CNF text."""
    clause_list = [list(clause) for clause in clauses]
    max_var = max(
        [num_vars] + [abs(lit) for clause in clause_list for lit in clause], default=0
    )
    lines = [f"p cnf {max_var} {len(clause_list)}"]
    for clause in clause_list:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"
