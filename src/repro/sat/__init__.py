"""Conflict-driven clause-learning (CDCL) SAT solving.

This subpackage is the Boolean reasoning substrate used by :mod:`repro.smt`.
It provides a self-contained CDCL solver with the standard modern feature
set -- two-watched-literal propagation, first-UIP clause learning, VSIDS
branching with phase saving, Luby restarts and incremental solving under
assumptions -- together with DIMACS I/O and cardinality / pseudo-Boolean
encoders.

The public API mirrors the shape of classic incremental solvers (MiniSat,
CaDiCaL): variables are positive integers, literals are signed integers and
clauses are iterables of literals.

Example
-------
>>> from repro.sat import Solver
>>> solver = Solver()
>>> solver.add_clause([1, 2])
>>> solver.add_clause([-1, 2])
>>> solver.add_clause([-2, 3])
>>> solver.solve()
True
>>> solver.model_value(3)
True
"""

from repro.sat.solver import Solver, SolverResult, SolverStatistics
from repro.sat.dimacs import parse_dimacs, to_dimacs
from repro.sat.encodings import (
    CardinalityEncoder,
    at_least_k,
    at_most_k,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_k,
    exactly_one,
)

__all__ = [
    "Solver",
    "SolverResult",
    "SolverStatistics",
    "parse_dimacs",
    "to_dimacs",
    "CardinalityEncoder",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "at_most_k",
    "at_least_k",
    "exactly_k",
    "exactly_one",
]
