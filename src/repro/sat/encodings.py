"""Cardinality and pseudo-Boolean constraint encodings to CNF.

These encodings translate "at most / at least / exactly k of these literals
are true" constraints into clauses understood by :class:`repro.sat.Solver`.
They are used by :mod:`repro.smt` when compiling pseudo-Boolean objectives
and by the adaptation model for mutual-exclusion constraints between
substitutions (Eq. (1) of the paper is a pairwise at-most-one constraint).

The sequential-counter encoding (Sinz 2005) is used for the general case and
the pairwise encoding for small at-most-one constraints.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence


class CardinalityEncoder:
    """Helper that allocates auxiliary variables for cardinality encodings.

    Parameters
    ----------
    new_var:
        Callable returning a fresh, unused variable number each time it is
        invoked (typically ``Solver.new_var``).
    """

    def __init__(self, new_var: Callable[[], int]) -> None:
        self._new_var = new_var

    # ------------------------------------------------------------------
    def at_most_one(self, literals: Sequence[int]) -> List[List[int]]:
        """Encode ``sum(literals) <= 1`` choosing pairwise or sequential."""
        if len(literals) <= 4:
            return at_most_one_pairwise(literals)
        return at_most_one_sequential(literals, self._new_var)

    def at_most_k(self, literals: Sequence[int], bound: int) -> List[List[int]]:
        """Encode ``sum(literals) <= bound`` with a sequential counter."""
        return at_most_k(literals, bound, self._new_var)

    def at_least_k(self, literals: Sequence[int], bound: int) -> List[List[int]]:
        """Encode ``sum(literals) >= bound``."""
        return at_least_k(literals, bound, self._new_var)

    def exactly_k(self, literals: Sequence[int], bound: int) -> List[List[int]]:
        """Encode ``sum(literals) == bound``."""
        return exactly_k(literals, bound, self._new_var)


def at_most_one_pairwise(literals: Sequence[int]) -> List[List[int]]:
    """Pairwise (binomial) at-most-one encoding: O(n^2) binary clauses."""
    clauses: List[List[int]] = []
    for index, first in enumerate(literals):
        for second in literals[index + 1 :]:
            clauses.append([-first, -second])
    return clauses


def at_most_one_sequential(
    literals: Sequence[int], new_var: Callable[[], int]
) -> List[List[int]]:
    """Sequential (ladder) at-most-one encoding: O(n) clauses, n-1 aux vars."""
    literals = list(literals)
    if len(literals) <= 1:
        return []
    clauses: List[List[int]] = []
    registers = [new_var() for _ in range(len(literals) - 1)]
    clauses.append([-literals[0], registers[0]])
    for index in range(1, len(literals) - 1):
        clauses.append([-literals[index], registers[index]])
        clauses.append([-registers[index - 1], registers[index]])
        clauses.append([-literals[index], -registers[index - 1]])
    clauses.append([-literals[-1], -registers[-1]])
    return clauses


def at_most_k(
    literals: Sequence[int], bound: int, new_var: Callable[[], int]
) -> List[List[int]]:
    """Sinz sequential-counter encoding of ``sum(literals) <= bound``."""
    literals = list(literals)
    count = len(literals)
    if bound < 0:
        # Unsatisfiable unless there are no literals at all; force all false
        # and add an empty clause when literals exist.
        if not literals:
            return [[]]
        return [[-lit] for lit in literals] + [[literals[0]], [-literals[0]]]
    if bound >= count:
        return []
    if bound == 0:
        return [[-lit] for lit in literals]

    # registers[i][j] is true when at least j+1 of the first i+1 literals hold.
    registers = [[new_var() for _ in range(bound)] for _ in range(count)]
    clauses: List[List[int]] = []
    clauses.append([-literals[0], registers[0][0]])
    for j in range(1, bound):
        clauses.append([-registers[0][j]])
    for i in range(1, count):
        clauses.append([-literals[i], registers[i][0]])
        clauses.append([-registers[i - 1][0], registers[i][0]])
        for j in range(1, bound):
            clauses.append([-literals[i], -registers[i - 1][j - 1], registers[i][j]])
            clauses.append([-registers[i - 1][j], registers[i][j]])
        clauses.append([-literals[i], -registers[i - 1][bound - 1]])
    return clauses


def at_least_k(
    literals: Sequence[int], bound: int, new_var: Callable[[], int]
) -> List[List[int]]:
    """Encode ``sum(literals) >= bound`` as at-most on the negated literals."""
    literals = list(literals)
    if bound <= 0:
        return []
    if bound > len(literals):
        return [[]]
    if bound == 1:
        return [list(literals)]
    negated = [-lit for lit in literals]
    return at_most_k(negated, len(literals) - bound, new_var)


def exactly_k(
    literals: Sequence[int], bound: int, new_var: Callable[[], int]
) -> List[List[int]]:
    """Encode ``sum(literals) == bound``."""
    return at_most_k(literals, bound, new_var) + at_least_k(literals, bound, new_var)


def exactly_one(
    literals: Sequence[int], new_var: Callable[[], int] | None = None
) -> List[List[int]]:
    """Encode ``sum(literals) == 1`` (pairwise at-most-one plus the clause)."""
    literals = list(literals)
    clauses = [list(literals)]
    if new_var is not None and len(literals) > 4:
        clauses.extend(at_most_one_sequential(literals, new_var))
    else:
        clauses.extend(at_most_one_pairwise(literals))
    return clauses


def pseudo_boolean_leq(
    terms: Iterable[tuple[int, int]], bound: int, new_var: Callable[[], int]
) -> List[List[int]]:
    """Encode ``sum(weight_i * lit_i) <= bound`` for non-negative weights.

    A simple weight-expansion into a cardinality constraint is used: each
    weighted literal is repeated ``weight`` times.  This is adequate for the
    small pseudo-Boolean side constraints arising in the adaptation model
    (weights are small integers after scaling); it is not intended as a
    general-purpose competitive PB encoder.
    """
    expanded: List[int] = []
    for weight, literal in terms:
        if weight < 0:
            raise ValueError("pseudo_boolean_leq requires non-negative weights")
        expanded.extend([literal] * weight)
    return at_most_k(expanded, bound, new_var)
