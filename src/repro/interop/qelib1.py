"""The bundled ``qelib1.inc`` standard gate library.

``include "qelib1.inc";`` resolves to this embedded source — no file
lookup happens, so parsing works on any machine and on in-memory QASM
strings.  The definitions follow the OpenQASM 2.0 paper's qelib1 (plus
the now-standard ``swap``/``cswap``/``crx``/``cry``/``sx``/``sxdg``/
``rzz``/``rxx`` extensions and an ``iswap`` convenience gate, which the
exporter relies on for round-tripping the spin-native gate set).

Most of these names are intercepted by the frontend's native-gate table
and built straight from :data:`repro.circuits.gates.GATE_BUILDERS` with
their exact textbook matrices; the QASM bodies below are only expanded
for the composite gates without a native builder (``ccx``, ``ch``,
``cswap``, ``cu3``, ``rzz``, ``rxx``, ...).
"""

QELIB1_SOURCE = """
// bundled qelib1.inc (OpenQASM 2.0 standard gate library)
gate u3(theta,phi,lambda) q { U(theta,phi,lambda) q; }
gate u2(phi,lambda) q { U(pi/2,phi,lambda) q; }
gate u1(lambda) q { U(0,0,lambda) q; }
gate cx c,t { CX c,t; }
gate id a { U(0,0,0) a; }
gate u0(gamma) q { U(0,0,0) q; }
gate x a { u3(pi,0,pi) a; }
gate y a { u3(pi,pi/2,pi/2) a; }
gate z a { u1(pi) a; }
gate h a { u2(0,pi) a; }
gate s a { u1(pi/2) a; }
gate sdg a { u1(-pi/2) a; }
gate t a { u1(pi/4) a; }
gate tdg a { u1(-pi/4) a; }
gate sx a { sdg a; h a; sdg a; }
gate sxdg a { s a; h a; s a; }
gate rx(theta) a { u3(theta,-pi/2,pi/2) a; }
gate ry(theta) a { u3(theta,0,0) a; }
gate rz(phi) a { u1(phi) a; }
gate cz a,b { h b; cx a,b; h b; }
gate cy a,b { sdg b; cx a,b; s b; }
gate swap a,b { cx a,b; cx b,a; cx a,b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate ccx a,b,c { h c; cx b,c; tdg c; cx a,c; t c; cx b,c; tdg c; cx a,c; t b; t c; h c; cx a,b; t a; tdg b; cx a,b; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate crx(lambda) a,b { u1(pi/2) b; cx a,b; u3(-lambda/2,0,0) b; cx a,b; u3(lambda/2,-pi/2,0) b; }
gate cry(lambda) a,b { ry(lambda/2) b; cx a,b; ry(-lambda/2) b; cx a,b; }
gate crz(lambda) a,b { rz(lambda/2) b; cx a,b; rz(-lambda/2) b; cx a,b; }
gate cu1(lambda) a,b { u1(lambda/2) a; cx a,b; u1(-lambda/2) b; cx a,b; u1(lambda/2) b; }
gate cp(lambda) a,b { cu1(lambda) a,b; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
gate rxx(theta) a,b { h a; h b; cx a,b; u1(theta) b; cx a,b; h a; h b; }
gate iswap a,b { s a; s b; h a; cx a,b; cx b,a; h b; }
"""

#: Include filenames that resolve to the embedded library.
STDLIB_FILENAMES = frozenset({"qelib1.inc"})
