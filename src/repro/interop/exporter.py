"""OpenQASM 2.0 exporter: :func:`circuit_to_qasm`.

Every gate of :data:`repro.circuits.gates.GATE_BUILDERS` exports:

* standard qelib1 names are written directly (``cphase`` under its
  qelib1 spelling ``cu1``),
* the spin-native and non-standard gates (``crot``, ``cz_d``,
  ``swap_d``, ``swap_c``, ``iswap``, ``rzx``) are written with an
  explicit ``gate`` definition in terms of qelib1 gates, so the output
  loads in any OpenQASM 2.0 consumer — while this repository's own
  frontend re-imports them natively (exact matrices, names preserved),
* any other single-qubit gate falls back to its ZYZ decomposition and is
  emitted as a ``u3`` (equal up to global phase).

Unknown multi-qubit gates raise :class:`QasmExportError` — exporting is
exact or it fails loudly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.interop.errors import QasmExportError

#: Gate names written verbatim (value = the emitted QASM spelling).
DIRECT_EXPORTS: Dict[str, str] = {
    name: name
    for name in (
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
        "rx", "ry", "rz", "u1", "u2", "u3",
        "cx", "cy", "cz", "swap", "crx", "cry", "crz",
    )
}
DIRECT_EXPORTS["cphase"] = "cu1"

#: Non-standard gates and the qelib1-only definition emitted for them.
#: The CROT body realizes C-[Rz(phi) Rx(theta) Rz(-phi)] (the conditional
#: rotation about an XY-plane axis at azimuth phi); RZX conjugates the
#: exact CX-RZ-CX realization of exp(-i theta/2 Z(x)Z) into Z(x)X.
CUSTOM_DEFINITIONS: Dict[str, str] = {
    "cz_d": "gate cz_d a,b { cz a,b; }",
    "swap_d": "gate swap_d a,b { swap a,b; }",
    "swap_c": "gate swap_c a,b { swap a,b; }",
    "iswap": "gate iswap a,b { s a; s b; h a; cx a,b; cx b,a; h b; }",
    "crot": "gate crot(theta,phi) a,b { rz(-phi) b; crx(theta) a,b; rz(phi) b; }",
    "rzx": "gate rzx(theta) a,b { h b; cx a,b; rz(theta) b; cx a,b; h b; }",
}


def _format_param(value: float) -> str:
    """Render a parameter so it re-parses to the identical float."""
    text = format(float(value), ".17g")
    return text


def _instruction_line(name: str, params: Sequence[float], qubits: Sequence[int],
                      register: str) -> str:
    rendered = ""
    if params:
        rendered = "(" + ",".join(_format_param(p) for p in params) + ")"
    args = ",".join(f"{register}[{q}]" for q in qubits)
    return f"{name}{rendered} {args};"


def circuit_to_qasm(circuit: QuantumCircuit, *, register: str = "q") -> str:
    """Serialize ``circuit`` as a self-contained OpenQASM 2.0 program."""
    from repro.synthesis.single_qubit import u3_params

    needed_definitions: List[str] = []
    body: List[str] = []
    for instruction in circuit.instructions:
        name = instruction.gate.name
        params = instruction.gate.params
        if name in DIRECT_EXPORTS:
            body.append(
                _instruction_line(
                    DIRECT_EXPORTS[name], params, instruction.qubits, register
                )
            )
            continue
        if name in CUSTOM_DEFINITIONS:
            if name not in needed_definitions:
                needed_definitions.append(name)
            body.append(
                _instruction_line(name, params, instruction.qubits, register)
            )
            continue
        if instruction.gate.num_qubits == 1:
            # Any leftover single-qubit unitary (merged runs, adjoint
            # gates, plugin techniques) exports as its ZYZ angles.
            theta, phi, lam, _gamma = u3_params(instruction.gate.to_matrix())
            body.append(
                _instruction_line(
                    "u3", (theta, phi, lam), instruction.qubits, register
                )
            )
            continue
        raise QasmExportError(
            f"cannot export {instruction.gate.num_qubits}-qubit gate "
            f"{name!r}: no qelib1 realization is known"
        )

    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";']
    if circuit.name and circuit.name != "circuit":
        lines.insert(0, f"// circuit: {circuit.name}")
    for name in needed_definitions:
        lines.append(CUSTOM_DEFINITIONS[name])
    lines.append(f"qreg {register}[{circuit.num_qubits}];")
    lines.extend(body)
    return "\n".join(lines) + "\n"


def write_qasm_file(circuit: QuantumCircuit, path: str, *,
                    register: str = "q") -> None:
    """Write :func:`circuit_to_qasm` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(circuit_to_qasm(circuit, register=register))
