"""Hand-written lexer for OpenQASM 2.0.

Produces a flat list of :class:`Token` objects with 1-based line/column
coordinates.  ``//`` line comments are skipped; the only multi-character
operators of the grammar are ``->`` and ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.interop.errors import QasmError

#: Words with their own token type (everything else lexes as ID).
KEYWORDS = frozenset(
    {
        "OPENQASM",
        "include",
        "qreg",
        "creg",
        "gate",
        "opaque",
        "barrier",
        "measure",
        "reset",
        "if",
        "pi",
        "U",
        "CX",
    }
)

#: Single-character punctuation/operator tokens.
SYMBOLS = frozenset("()[]{};,+-*/^")


@dataclass(frozen=True)
class Token:
    """One lexical token: type, verbatim text and source position."""

    type: str  # keyword, "id", "int", "real", "string", or the symbol itself
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # compact form for parser error messages
        return f"{self.text!r}@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into tokens, ending with a synthetic ``eof`` token."""
    tokens: List[Token] = []
    line, column = 1, 1
    index, length = 0, len(source)

    def error(message: str) -> QasmError:
        return QasmError(message, line, column)

    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "/" and index + 1 < length and source[index + 1] == "/":
            while index < length and source[index] != "\n":
                index += 1
            continue
        start_line, start_column = line, column
        if char == '"':
            end = source.find('"', index + 1)
            if end == -1 or "\n" in source[index + 1 : end]:
                raise error("unterminated string literal")
            text = source[index + 1 : end]
            tokens.append(Token("string", text, start_line, start_column))
            column += end + 1 - index
            index = end + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length and source[index + 1].isdigit()):
            end = index
            seen_dot = False
            seen_exp = False
            while end < length:
                c = source[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end > index:
                    if end + 1 < length and (
                        source[end + 1].isdigit()
                        or (source[end + 1] in "+-" and end + 2 < length and source[end + 2].isdigit())
                    ):
                        seen_exp = True
                        end += 2 if source[end + 1] in "+-" else 1
                    else:
                        break
                else:
                    break
            text = source[index:end]
            kind = "real" if (seen_dot or seen_exp) else "int"
            tokens.append(Token(kind, text, start_line, start_column))
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[index:end]
            kind = text if text in KEYWORDS else "id"
            tokens.append(Token(kind, text, start_line, start_column))
            column += end - index
            index = end
            continue
        if char == "-" and index + 1 < length and source[index + 1] == ">":
            tokens.append(Token("->", "->", start_line, start_column))
            index += 2
            column += 2
            continue
        if char == "=" and index + 1 < length and source[index + 1] == "=":
            tokens.append(Token("==", "==", start_line, start_column))
            index += 2
            column += 2
            continue
        if char in SYMBOLS:
            tokens.append(Token(char, char, start_line, start_column))
            index += 1
            column += 1
            continue
        raise error(f"unexpected character {char!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens
