"""Bundled OpenQASM benchmark suite (paper-style 3-8 qubit circuits).

The DATE'23 evaluation runs the adaptation techniques over standard
benchmark circuits; this module embeds a RevLib/QASMBench-style suite
directly in the package so every install can exercise the full
``repro.compile`` stack on real circuit files with zero downloads.

Each entry is plain OpenQASM 2.0 source (parsed on demand through
:mod:`repro.interop.frontend`); metadata (qubit count, depth, two-qubit
gate count) is computed from the parsed circuit, never hand-maintained.

    >>> from repro.interop import load_suite, suite_names
    >>> suite_names()[:3]
    ['adder_n4', 'bv_n5', 'clifford_s11_n4']
    >>> entry = load_suite(["ghz_n5"])[0]
    >>> entry.circuit().num_qubits
    5
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.interop.frontend import qasm_to_circuit


@lru_cache(maxsize=None)
def _parsed(name: str) -> QuantumCircuit:
    """Parse a bundled benchmark once; callers copy before mutating."""
    entry = _BENCHMARKS[name]
    return qasm_to_circuit(entry.qasm, name=entry.name)


@dataclass(frozen=True)
class SuiteEntry:
    """One bundled benchmark: name, provenance note and QASM source.

    Generated entries (the random-Clifford and QV-style families)
    additionally record the ``family`` they were drawn from and the
    ``seed`` that deterministically produced their QASM source.
    """

    name: str
    description: str
    qasm: str
    family: Optional[str] = None
    seed: Optional[int] = None

    def circuit(self) -> QuantumCircuit:
        """The parsed circuit (a copy — instructions are immutable, the
        container is not; the parse itself is cached per benchmark)."""
        return _parsed(self.name).copy()

    def metadata(self) -> Dict[str, object]:
        """Computed circuit statistics: qubits, gates, depth, 2q count
        (plus ``family``/``seed`` provenance for generated entries)."""
        circuit = _parsed(self.name)
        metadata: Dict[str, object] = {
            "qubits": circuit.num_qubits,
            "gates": len(circuit.instructions),
            "depth": circuit.depth(),
            "two_qubit_gates": circuit.two_qubit_gate_count(),
        }
        if self.family is not None:
            metadata["family"] = self.family
        if self.seed is not None:
            metadata["seed"] = self.seed
        return metadata


_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

_BENCHMARKS: Dict[str, SuiteEntry] = {}


def _register(name: str, description: str, body: str,
              family: Optional[str] = None, seed: Optional[int] = None) -> None:
    _BENCHMARKS[name] = SuiteEntry(name, description, _HEADER + body,
                                   family=family, seed=seed)


_register(
    "adder_n4",
    "one-bit full adder (carry-sum network over ccx/cx)",
    """qreg q[4];
creg c[2];
x q[0];
x q[1];
ccx q[0],q[1],q[3];
cx q[0],q[1];
ccx q[1],q[2],q[3];
cx q[1],q[2];
cx q[0],q[1];
measure q[2] -> c[0];
measure q[3] -> c[1];
""",
)

_register(
    "bv_n5",
    "Bernstein-Vazirani with secret 1011 (4 data qubits + oracle ancilla)",
    """qreg q[5];
creg c[4];
x q[4];
h q[0];
h q[1];
h q[2];
h q[3];
h q[4];
cx q[0],q[4];
cx q[2],q[4];
cx q[3],q[4];
h q[0];
h q[1];
h q[2];
h q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
""",
)

_register(
    "dj_n4",
    "Deutsch-Jozsa, balanced 3-bit oracle (CNOT fan onto the ancilla)",
    """qreg q[4];
creg c[3];
x q[3];
h q[0];
h q[1];
h q[2];
h q[3];
cx q[0],q[3];
cx q[1],q[3];
cx q[2],q[3];
h q[0];
h q[1];
h q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
""",
)

_register(
    "fredkin_n3",
    "controlled-SWAP with both targets prepared in |1>|0>",
    """qreg q[3];
x q[0];
x q[1];
cswap q[0],q[1],q[2];
""",
)

_register(
    "ghz_n5",
    "5-qubit GHZ state (Hadamard + CNOT chain)",
    """qreg q[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
""",
)

_register(
    "ghz_n8",
    "8-qubit GHZ state (Hadamard + CNOT chain)",
    """qreg q[8];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
cx q[4],q[5];
cx q[5],q[6];
cx q[6],q[7];
""",
)

_register(
    "grover_n3",
    "one Grover iteration marking |111> (CCZ oracle + diffuser)",
    """qreg q[3];
h q[0];
h q[1];
h q[2];
// oracle: ccz on |111>
h q[2];
ccx q[0],q[1],q[2];
h q[2];
// diffuser
h q[0];
h q[1];
h q[2];
x q[0];
x q[1];
x q[2];
h q[2];
ccx q[0],q[1],q[2];
h q[2];
x q[0];
x q[1];
x q[2];
h q[0];
h q[1];
h q[2];
""",
)

_register(
    "hs_n4",
    "hidden-shift algorithm on 4 qubits (bent-function oracle of CZ/Z)",
    """qreg q[4];
h q[0];
h q[1];
h q[2];
h q[3];
x q[0];
x q[2];
cz q[0],q[1];
cz q[2],q[3];
x q[0];
x q[2];
h q[0];
h q[1];
h q[2];
h q[3];
cz q[0],q[1];
cz q[2],q[3];
h q[0];
h q[1];
h q[2];
h q[3];
""",
)

_register(
    "peres_n3",
    "Peres gate (Toffoli followed by CNOT), a reversible-logic staple",
    """qreg q[3];
x q[0];
x q[1];
ccx q[0],q[1],q[2];
cx q[0],q[1];
""",
)

_register(
    "qaoa_n4",
    "two QAOA layers for MaxCut on a 4-ring (RZZ cost + RX mixer)",
    """qreg q[4];
h q[0];
h q[1];
h q[2];
h q[3];
rzz(0.98006657784124163) q[0],q[1];
rzz(0.98006657784124163) q[1],q[2];
rzz(0.98006657784124163) q[2],q[3];
rzz(0.98006657784124163) q[3],q[0];
rx(1.2110560275684594) q[0];
rx(1.2110560275684594) q[1];
rx(1.2110560275684594) q[2];
rx(1.2110560275684594) q[3];
rzz(0.50632352071888715) q[0],q[1];
rzz(0.50632352071888715) q[1],q[2];
rzz(0.50632352071888715) q[2],q[3];
rzz(0.50632352071888715) q[3],q[0];
rx(2.5317483548617035) q[0];
rx(2.5317483548617035) q[1];
rx(2.5317483548617035) q[2];
rx(2.5317483548617035) q[3];
""",
)

_register(
    "qft_n4",
    "4-qubit quantum Fourier transform (controlled-phase ladder + swaps)",
    """qreg q[4];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
cu1(pi/8) q[3],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
cu1(pi/4) q[3],q[1];
h q[2];
cu1(pi/2) q[3],q[2];
h q[3];
swap q[0],q[3];
swap q[1],q[2];
""",
)

_register(
    "qft_n5",
    "5-qubit quantum Fourier transform (controlled-phase ladder + swaps)",
    """qreg q[5];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
cu1(pi/8) q[3],q[0];
cu1(pi/16) q[4],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
cu1(pi/4) q[3],q[1];
cu1(pi/8) q[4],q[1];
h q[2];
cu1(pi/2) q[3],q[2];
cu1(pi/4) q[4],q[2];
h q[3];
cu1(pi/2) q[4],q[3];
h q[4];
swap q[0],q[4];
swap q[1],q[3];
""",
)

_register(
    "qpe_n4",
    "quantum phase estimation of the T gate (3 counting qubits)",
    """qreg q[4];
creg c[3];
x q[3];
h q[0];
h q[1];
h q[2];
cu1(pi/4) q[2],q[3];
cu1(pi/2) q[1],q[3];
cu1(pi) q[0],q[3];
// inverse QFT on the counting register
swap q[0],q[2];
h q[2];
cu1(-pi/2) q[2],q[1];
h q[1];
cu1(-pi/4) q[2],q[0];
cu1(-pi/2) q[1],q[0];
h q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
""",
)

_register(
    "rc_adder_n6",
    "Cuccaro ripple-carry adder, 2+2 bits (user-defined maj/uma gates)",
    """gate maj a,b,c { cx c,b; cx c,a; ccx a,b,c; }
gate uma a,b,c { ccx a,b,c; cx c,a; cx a,b; }
qreg q[6];
creg c[3];
x q[1];
x q[2];
x q[3];
maj q[0],q[2],q[1];
maj q[1],q[4],q[3];
cx q[3],q[5];
uma q[1],q[4],q[3];
uma q[0],q[2],q[1];
measure q[2] -> c[0];
measure q[4] -> c[1];
measure q[5] -> c[2];
""",
)

_register(
    "simon_n6",
    "Simon's algorithm, 3+3 qubits with secret string 110",
    """qreg q[6];
creg c[3];
h q[0];
h q[1];
h q[2];
cx q[0],q[3];
cx q[1],q[4];
cx q[2],q[5];
cx q[1],q[3];
cx q[1],q[4];
h q[0];
h q[1];
h q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
""",
)

_register(
    "teleport_n3",
    "coherent teleportation (measurement deferred to unitary controls)",
    """qreg q[3];
ry(0.69999999999999996) q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
cx q[1],q[2];
cz q[0],q[2];
""",
)

_register(
    "toffoli_n3",
    "Toffoli gate with both controls prepared in |1>",
    """qreg q[3];
x q[0];
x q[1];
ccx q[0],q[1],q[2];
""",
)

_register(
    "vqe_hwe_n4",
    "hardware-efficient VQE ansatz: RY/RZ layers + CZ ladders",
    """qreg q[4];
ry(0.40253254497308997) q[0];
rz(5.3477184480330857) q[0];
ry(2.2225643849774164) q[1];
rz(0.91020529184381591) q[1];
ry(3.9203733676997949) q[2];
rz(4.2516982979529833) q[2];
ry(1.5909152703771587) q[3];
rz(2.6864942935972102) q[3];
cz q[0],q[1];
cz q[1],q[2];
cz q[2],q[3];
ry(5.9124069216405809) q[0];
rz(3.7235314561286619) q[0];
ry(0.26767866518308507) q[1];
rz(1.0865108495101736) q[1];
ry(4.9496970785955271) q[2];
rz(5.6951401389399699) q[2];
ry(2.5028331459131405) q[3];
rz(0.4237271695615384) q[3];
cz q[0],q[1];
cz q[1],q[2];
cz q[2],q[3];
ry(1.1295534357512793) q[0];
ry(4.0325370571999437) q[1];
ry(0.71874813674931707) q[2];
ry(3.1173548555724243) q[3];
""",
)

_register(
    "wstate_n3",
    "3-qubit W state (RY + controlled-H + CNOT construction)",
    """qreg q[3];
ry(1.9106332362490186) q[0];
ch q[0],q[1];
cx q[1],q[2];
cx q[0],q[1];
x q[0];
""",
)


# ---------------------------------------------------------------------------
# Generated families: QFT, random Cliffords, QV-style models, ECC encoder
# ---------------------------------------------------------------------------
# The generators below are deterministic by construction: the only
# randomness is a self-contained 32-bit LCG (so the emitted QASM is
# bit-identical across Python versions and platforms), and every float
# is formatted with repr() (shortest round-tripping decimal).  The
# golden-suite quality harness (repro.golden) relies on this — the same
# seed must always produce the same source, hence the same circuit hash.


class _Lcg:
    """Tiny deterministic PRNG (Numerical Recipes LCG, 32-bit state)."""

    def __init__(self, seed: int) -> None:
        self._state = (seed ^ 0x9E3779B9) & 0xFFFFFFFF

    def next_int(self, bound: int) -> int:
        """A deterministic integer in ``[0, bound)``."""
        self._state = (1664525 * self._state + 1013904223) & 0xFFFFFFFF
        return (self._state >> 8) % bound

    def next_angle(self) -> float:
        """A deterministic angle in ``[0, 2*pi)``."""
        self._state = (1664525 * self._state + 1013904223) & 0xFFFFFFFF
        return (self._state / 2.0**32) * 6.283185307179586


def qft_qasm_body(num_qubits: int) -> str:
    """QFT circuit body: Hadamard + controlled-phase ladder + final swaps."""
    lines = [f"qreg q[{num_qubits}];"]
    for i in range(num_qubits):
        lines.append(f"h q[{i}];")
        for j in range(i + 1, num_qubits):
            lines.append(f"cu1(pi/{2 ** (j - i)}) q[{j}],q[{i}];")
    for i in range(num_qubits // 2):
        lines.append(f"swap q[{i}],q[{num_qubits - 1 - i}];")
    return "\n".join(lines) + "\n"


#: Gate pools of the random-Clifford family.
_CLIFFORD_1Q = ("h", "s", "sdg", "x", "z")
_CLIFFORD_2Q = ("cx", "cz", "swap")


def random_clifford_qasm_body(num_qubits: int, seed: int,
                              moments: int = 8) -> str:
    """Seeded random Clifford circuit body (same seed → identical QASM).

    Each moment applies one single-qubit Clifford per qubit outside a
    randomly chosen pair, then one two-qubit Clifford on that pair.
    """
    rng = _Lcg(seed)
    lines = [f"qreg q[{num_qubits}];"]
    for _ in range(moments):
        a = rng.next_int(num_qubits)
        b = rng.next_int(num_qubits - 1)
        if b >= a:
            b += 1
        for qubit in range(num_qubits):
            if qubit not in (a, b):
                gate = _CLIFFORD_1Q[rng.next_int(len(_CLIFFORD_1Q))]
                lines.append(f"{gate} q[{qubit}];")
        gate = _CLIFFORD_2Q[rng.next_int(len(_CLIFFORD_2Q))]
        lines.append(f"{gate} q[{a}],q[{b}];")
    return "\n".join(lines) + "\n"


def qv_model_qasm_body(num_qubits: int, layers: int, seed: int) -> str:
    """Quantum-volume-style model circuit body (same seed → same QASM).

    Each layer pairs up a shuffled qubit permutation and applies a
    haar-flavored two-qubit block (u3 · u3 · cx · u3 · u3) to every pair.
    """
    rng = _Lcg(seed)
    lines = [f"qreg q[{num_qubits}];"]

    def u3(qubit: int) -> str:
        theta, phi, lam = (rng.next_angle() for _ in range(3))
        return f"u3({theta!r},{phi!r},{lam!r}) q[{qubit}];"

    for _ in range(layers):
        order = list(range(num_qubits))
        for i in range(num_qubits - 1, 0, -1):  # Fisher-Yates on the LCG
            j = rng.next_int(i + 1)
            order[i], order[j] = order[j], order[i]
        for i in range(0, num_qubits - 1, 2):
            a, b = order[i], order[i + 1]
            lines.append(u3(a))
            lines.append(u3(b))
            lines.append(f"cx q[{a}],q[{b}];")
            lines.append(u3(a))
            lines.append(u3(b))
    return "\n".join(lines) + "\n"


_register(
    "qft_n6",
    "6-qubit quantum Fourier transform (generated cu1 ladder + swaps)",
    qft_qasm_body(6),
)

_register(
    "qft_n8",
    "8-qubit quantum Fourier transform (generated cu1 ladder + swaps)",
    qft_qasm_body(8),
)

_register(
    "clifford_s11_n4",
    "seeded random Clifford circuit, 8 moments over {h,s,sdg,x,z,cx,cz,swap}",
    random_clifford_qasm_body(4, seed=11),
    family="clifford", seed=11,
)

_register(
    "clifford_s23_n5",
    "seeded random Clifford circuit, 8 moments over {h,s,sdg,x,z,cx,cz,swap}",
    random_clifford_qasm_body(5, seed=23),
    family="clifford", seed=23,
)

_register(
    "clifford_s42_n6",
    "seeded random Clifford circuit, 8 moments over {h,s,sdg,x,z,cx,cz,swap}",
    random_clifford_qasm_body(6, seed=42),
    family="clifford", seed=42,
)

_register(
    "qv_n4",
    "QV-style model circuit: 3 layers of permuted u3/cx two-qubit blocks",
    qv_model_qasm_body(4, layers=3, seed=7),
    family="qv", seed=7,
)

_register(
    "qv_n5",
    "QV-style model circuit: 3 layers of permuted u3/cx two-qubit blocks",
    qv_model_qasm_body(5, layers=3, seed=13),
    family="qv", seed=13,
)

_register(
    "repetition_n5",
    "3-qubit repetition-code encoder + syndrome extraction (2 ancillas)",
    """qreg q[5];
creg c[2];
ry(0.59999999999999998) q[0];
cx q[0],q[1];
cx q[0],q[2];
cx q[0],q[3];
cx q[1],q[3];
cx q[1],q[4];
cx q[2],q[4];
measure q[3] -> c[0];
measure q[4] -> c[1];
""",
)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------
def suite_names() -> List[str]:
    """Sorted names of every bundled benchmark."""
    return sorted(_BENCHMARKS)


def load_suite(names: Optional[Iterable[str]] = None) -> List[SuiteEntry]:
    """Return bundled benchmarks (all of them, or the requested names)."""
    if names is None:
        return [_BENCHMARKS[name] for name in suite_names()]
    entries = []
    for name in names:
        try:
            entries.append(_BENCHMARKS[name])
        except KeyError:
            raise KeyError(
                f"unknown suite benchmark {name!r}; available: {suite_names()}"
            ) from None
    return entries


def suite_circuit(name: str) -> QuantumCircuit:
    """Parse one bundled benchmark into a circuit."""
    return load_suite([name])[0].circuit()


def suite_metadata(
    names: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, int]]:
    """Computed metadata for the requested (default: all) benchmarks."""
    return {entry.name: entry.metadata() for entry in load_suite(names)}
