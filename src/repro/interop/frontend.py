"""Lowering of OpenQASM 2.0 ASTs to :class:`repro.circuits.QuantumCircuit`.

The frontend walks a parsed :class:`repro.interop.ast_nodes.Program` and

* flattens all ``qreg`` declarations into one contiguous qubit index
  space (declaration order, register-internal order preserved),
* intercepts gate names with a **native builder** in
  :data:`repro.circuits.gates.GATE_BUILDERS` (plus the spellings ``U``,
  ``CX``, ``cu1``/``cp`` and ``p``) and emits their exact library
  matrices — the same policy mainstream importers use for qelib1 names,
  and what keeps the spin-native gates (``crot``, ``cz_d``, ``iswap``,
  ``rzx``, ...) intact across an export → import round trip.  A ``gate``
  definition written in the program itself only yields to this
  interception when its body is unitary-equivalent to the library gate
  (the case for re-imported exports); a same-named definition with
  *different* semantics is authoritative and expands instead,
* expands any other ``gate`` definition recursively through the
  constant-expression evaluator (``pi``, arithmetic, unary minus,
  ``sin``/``cos``/...), and
* broadcasts whole-register arguments the way the spec demands
  (``cx q, r;`` maps pairwise over equally-sized registers).

``barrier`` statements and ``measure`` operations are validated and then
dropped: circuits in this repository are unitary-only containers, and
both are no-ops for the unitary.  ``reset`` and classically-conditioned
operations cannot be represented and raise :class:`QasmError`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Union

from repro.circuits import gates as glib
from repro.circuits.circuit import QuantumCircuit
from repro.interop.ast_nodes import (
    Argument,
    Barrier,
    Conditional,
    CregDecl,
    GateCall,
    GateDecl,
    Include,
    Measure,
    Program,
    QregDecl,
    Reset,
)
from repro.interop.errors import QasmError
from repro.interop.parser import parse_qasm
from repro.interop.qelib1 import QELIB1_SOURCE, STDLIB_FILENAMES

#: QASM gate name -> (GATE_BUILDERS key, allowed parameter counts, qubits).
#: Names listed here always build the exact library matrix; a same-named
#: ``gate`` definition in the program is treated as documentation.
NATIVE_GATES: Dict[str, Tuple[str, Tuple[int, ...], int]] = {
    "U": ("u3", (3,), 1),
    "CX": ("cx", (0,), 2),
    "id": ("id", (0,), 1),
    "x": ("x", (0,), 1),
    "y": ("y", (0,), 1),
    "z": ("z", (0,), 1),
    "h": ("h", (0,), 1),
    "s": ("s", (0,), 1),
    "sdg": ("sdg", (0,), 1),
    "t": ("t", (0,), 1),
    "tdg": ("tdg", (0,), 1),
    "sx": ("sx", (0,), 1),
    "sxdg": ("sxdg", (0,), 1),
    "rx": ("rx", (1,), 1),
    "ry": ("ry", (1,), 1),
    "rz": ("rz", (1,), 1),
    "p": ("u1", (1,), 1),
    "u1": ("u1", (1,), 1),
    "u2": ("u2", (2,), 1),
    "u3": ("u3", (3,), 1),
    "u": ("u3", (3,), 1),
    "cx": ("cx", (0,), 2),
    "cy": ("cy", (0,), 2),
    "cz": ("cz", (0,), 2),
    "cz_d": ("cz_d", (0,), 2),
    "cp": ("cphase", (1,), 2),
    "cu1": ("cphase", (1,), 2),
    "cphase": ("cphase", (1,), 2),
    "crx": ("crx", (1,), 2),
    "cry": ("cry", (1,), 2),
    "crz": ("crz", (1,), 2),
    "crot": ("crot", (1, 2), 2),
    "swap": ("swap", (0,), 2),
    "swap_d": ("swap_d", (0,), 2),
    "swap_c": ("swap_c", (0,), 2),
    "iswap": ("iswap", (0,), 2),
    "rzx": ("rzx", (1,), 2),
}

#: Maximum gate-definition expansion depth (QASM definitions cannot
#: recurse, so anything deeper than this is a malformed input).
MAX_EXPANSION_DEPTH = 128

_STDLIB_CACHE: Optional[Tuple[GateDecl, ...]] = None


def _stdlib_declarations() -> Tuple[GateDecl, ...]:
    """Parse the embedded qelib1 once and cache its gate declarations."""
    global _STDLIB_CACHE
    if _STDLIB_CACHE is None:
        program = parse_qasm(QELIB1_SOURCE)
        _STDLIB_CACHE = tuple(
            statement
            for statement in program.statements
            if isinstance(statement, GateDecl)
        )
    return _STDLIB_CACHE


class _Lowering:
    """One lowering run over a program (single use)."""

    def __init__(self, program: Program, name: str) -> None:
        self.program = program
        self.name = name
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, int] = {}
        self.definitions: Dict[str, GateDecl] = {}
        self.user_defined: set = set()  # names declared by the program itself
        #: (name, params) -> whether the user definition matches the
        #: native library gate (so the exact matrix can be emitted).
        self._native_match: Dict[Tuple[str, Tuple[float, ...]], bool] = {}
        self.num_qubits = 0
        self.measure_count = 0

    # ------------------------------------------------------------------
    def run(self) -> QuantumCircuit:
        self._collect_registers()
        if self.num_qubits == 0:
            raise QasmError("the program declares no quantum registers")
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        for statement in self.program.statements:
            self._lower_statement(circuit, statement)
        return circuit

    def _collect_registers(self) -> None:
        for statement in self.program.statements:
            if isinstance(statement, QregDecl):
                self._declare(self.qregs, statement, (self.num_qubits, statement.size))
                self.num_qubits += statement.size
            elif isinstance(statement, CregDecl):
                self._declare(self.cregs, statement, statement.size)

    def _declare(self, table, statement, value) -> None:
        name = statement.name
        if name in self.qregs or name in self.cregs:
            raise QasmError(
                f"register {name!r} is already declared",
                statement.line, statement.column,
            )
        table[name] = value

    # ------------------------------------------------------------------
    def _lower_statement(self, circuit: QuantumCircuit, statement) -> None:
        if isinstance(statement, (QregDecl, CregDecl)):
            return  # collected up front
        if isinstance(statement, Include):
            self._handle_include(statement)
        elif isinstance(statement, GateDecl):
            self._handle_gate_decl(statement)
        elif isinstance(statement, GateCall):
            self._apply_call(circuit, statement)
        elif isinstance(statement, Barrier):
            for argument in statement.arguments:
                self._resolve_qubits(argument)  # validate only
        elif isinstance(statement, Measure):
            self._handle_measure(statement)
        elif isinstance(statement, Reset):
            raise QasmError(
                "reset is not supported (circuits here are unitary-only)",
                statement.line, statement.column,
            )
        elif isinstance(statement, Conditional):
            raise QasmError(
                "classically-conditioned operations (if) are not supported",
                statement.line, statement.column,
            )
        else:  # pragma: no cover - the parser produces no other nodes
            raise QasmError(
                f"cannot lower statement {statement!r}",
                statement.line, statement.column,
            )

    def _handle_include(self, statement: Include) -> None:
        if statement.filename not in STDLIB_FILENAMES:
            raise QasmError(
                f"cannot include {statement.filename!r}: only the bundled "
                "qelib1.inc is available",
                statement.line, statement.column,
            )
        for declaration in _stdlib_declarations():
            self.definitions.setdefault(declaration.name, declaration)

    def _handle_gate_decl(self, statement: GateDecl) -> None:
        if statement.name in self.user_defined:
            raise QasmError(
                f"gate {statement.name!r} is already defined",
                statement.line, statement.column,
            )
        self.definitions[statement.name] = statement
        self.user_defined.add(statement.name)

    def _handle_measure(self, statement: Measure) -> None:
        qubits = self._resolve_qubits(statement.source)
        destination = statement.destination
        if destination.register not in self.cregs:
            raise QasmError(
                f"unknown classical register {destination.register!r}",
                destination.line, destination.column,
            )
        size = self.cregs[destination.register]
        if destination.index is None:
            if len(qubits) != size:
                raise QasmError(
                    f"measure maps {len(qubits)} qubit(s) onto classical "
                    f"register {destination.register!r} of size {size}",
                    statement.line, statement.column,
                )
        else:
            if destination.index >= size:
                raise QasmError(
                    f"classical index {destination.register}[{destination.index}] "
                    f"out of range (size {size})",
                    destination.line, destination.column,
                )
            if len(qubits) != 1:
                raise QasmError(
                    "cannot measure a whole register into a single classical bit",
                    statement.line, statement.column,
                )
        self.measure_count += len(qubits)

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def _resolve_qubits(self, argument: Argument) -> List[int]:
        """Map an argument to concrete flat qubit indices (1 or a register)."""
        if argument.register not in self.qregs:
            raise QasmError(
                f"unknown quantum register {argument.register!r}",
                argument.line, argument.column,
            )
        offset, size = self.qregs[argument.register]
        if argument.index is None:
            return list(range(offset, offset + size))
        if argument.index >= size:
            raise QasmError(
                f"qubit index {argument.register}[{argument.index}] out of "
                f"range (size {size})",
                argument.line, argument.column,
            )
        return [offset + argument.index]

    def _apply_call(self, circuit: QuantumCircuit, call: GateCall) -> None:
        """Evaluate, broadcast and emit one top-level gate application."""
        params = [expression.evaluate({}) for expression in call.params]
        groups = [self._resolve_qubits(argument) for argument in call.arguments]
        sizes = {len(group) for group in groups if len(group) > 1}
        if len(sizes) > 1:
            raise QasmError(
                f"mismatched register sizes {sorted(sizes)} in broadcast "
                f"application of {call.name!r}",
                call.line, call.column,
            )
        repeat = sizes.pop() if sizes else 1
        for shot in range(repeat):
            qubits = [group[shot] if len(group) > 1 else group[0] for group in groups]
            self._emit(circuit, call, call.name, params, qubits, depth=0)

    def _emit(
        self,
        circuit: QuantumCircuit,
        call: GateCall,
        name: str,
        params: List[float],
        qubits: List[int],
        depth: int,
    ) -> None:
        """Emit one concrete gate application (recursing through defs)."""
        if depth > MAX_EXPANSION_DEPTH:
            raise QasmError(
                f"gate definitions nested deeper than {MAX_EXPANSION_DEPTH} "
                f"while expanding {name!r}",
                call.line, call.column,
            )
        native = NATIVE_GATES.get(name)
        if (
            native is not None
            and name in self.user_defined
            and not self._matches_native(name, params)
        ):
            # The program's own definition of a native-named gate means
            # something different — it is authoritative, so expand it.
            native = None
        if native is not None:
            builder_key, allowed_params, arity = native
            if len(params) not in allowed_params:
                expected = " or ".join(str(n) for n in allowed_params)
                raise QasmError(
                    f"gate {name!r} takes {expected} parameter(s), "
                    f"got {len(params)}",
                    call.line, call.column,
                )
            if len(qubits) != arity:
                raise QasmError(
                    f"gate {name!r} acts on {arity} qubit(s), got {len(qubits)}",
                    call.line, call.column,
                )
            if len(set(qubits)) != len(qubits):
                raise QasmError(
                    f"duplicate qubit arguments in {name!r} application",
                    call.line, call.column,
                )
            circuit.append(glib.build_gate(builder_key, *params), qubits)
            return

        declaration = self.definitions.get(name)
        if declaration is None:
            raise QasmError(f"unknown gate {name!r}", call.line, call.column)
        if declaration.opaque:
            raise QasmError(
                f"opaque gate {name!r} has no known realization",
                call.line, call.column,
            )
        if len(params) != len(declaration.params):
            raise QasmError(
                f"gate {name!r} takes {len(declaration.params)} parameter(s), "
                f"got {len(params)}",
                call.line, call.column,
            )
        if len(qubits) != len(declaration.qubits):
            raise QasmError(
                f"gate {name!r} acts on {len(declaration.qubits)} qubit(s), "
                f"got {len(qubits)}",
                call.line, call.column,
            )
        if len(set(qubits)) != len(qubits):
            raise QasmError(
                f"duplicate qubit arguments in {name!r} application",
                call.line, call.column,
            )
        self._expand_declaration_into(circuit, declaration, params, qubits, depth + 1)

    def _matches_native(self, name: str, params: List[float]) -> bool:
        """True when the program's own definition of a native-named gate
        is unitary-equivalent to the library gate for these parameters.

        Re-imported exports define ``crot``/``cz_d``/... with equivalent
        bodies, so they intercept natively (exact matrices, names kept);
        a foreign file reusing such a name for different semantics keeps
        its own meaning.
        """
        key = (name, tuple(params))
        cached = self._native_match.get(key)
        if cached is not None:
            return cached
        # Pre-seed so a (malformed) self-referential body re-entering this
        # check settles on "expand" instead of recursing forever.
        self._native_match[key] = False
        declaration = self.definitions[name]
        builder_key, allowed_params, arity = NATIVE_GATES[name]
        match = False
        if (
            not declaration.opaque
            and len(params) in allowed_params
            and len(declaration.params) == len(params)
            and len(declaration.qubits) == arity
        ):
            from repro.circuits.unitary import (
                allclose_up_to_global_phase,
                circuit_unitary,
            )

            try:
                gate = glib.build_gate(builder_key, *params)
                expanded = QuantumCircuit(arity)
                self._expand_declaration_into(
                    expanded, declaration, params, list(range(arity)), depth=1
                )
                reference = QuantumCircuit(arity).append(gate, range(arity))
                match = allclose_up_to_global_phase(
                    circuit_unitary(expanded), circuit_unitary(reference)
                )
            except (QasmError, ValueError, KeyError):
                match = False  # a broken body fails later, on its own terms
        self._native_match[key] = match
        return match

    def _expand_declaration_into(
        self,
        circuit: QuantumCircuit,
        declaration: GateDecl,
        params: List[float],
        qubits: List[int],
        depth: int,
    ) -> None:
        """Expand a definition body into a circuit — the single expansion
        path, used both by real emission and by the native-match probe."""
        environment = dict(zip(declaration.params, params))
        qubit_map = dict(zip(declaration.qubits, qubits))
        for statement in declaration.body:
            if isinstance(statement, Barrier):
                continue
            self._emit(
                circuit,
                statement,
                statement.name,
                [e.evaluate(environment) for e in statement.params],
                [qubit_map[a.register] for a in statement.arguments],
                depth,
            )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------
def qasm_to_circuit(
    source: Union[str, Program], *, name: Optional[str] = None
) -> QuantumCircuit:
    """Convert OpenQASM 2.0 source (or a parsed program) into a circuit."""
    program = parse_qasm(source) if isinstance(source, str) else source
    return _Lowering(program, name or "qasm_circuit").run()


#: Alias under the name the top-level API exports.
circuit_from_qasm = qasm_to_circuit


def load_qasm_file(path: Union[str, os.PathLike]) -> QuantumCircuit:
    """Parse a ``.qasm`` file; the circuit is named after the file stem."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    stem = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return qasm_to_circuit(source, name=stem or "qasm_circuit")


def looks_like_qasm_path(text: str) -> bool:
    """A single-line string ending in ``.qasm`` is treated as a file path."""
    stripped = text.strip()
    return "\n" not in stripped and stripped.lower().endswith(".qasm")


def coerce_circuit_input(value: Union[str, QuantumCircuit]) -> QuantumCircuit:
    """Accept a circuit, QASM source text, or a ``.qasm`` path.

    This is what lets :func:`repro.compile` ingest real-world circuit
    files directly; anything that is not a string passes through
    untouched (the facade validates types downstream).
    """
    if not isinstance(value, str):
        return value
    if looks_like_qasm_path(value):
        if not os.path.exists(value.strip()):
            raise FileNotFoundError(f"QASM file not found: {value.strip()!r}")
        return load_qasm_file(value.strip())
    return qasm_to_circuit(value)
