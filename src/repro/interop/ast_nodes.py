"""Typed AST of an OpenQASM 2.0 program.

The parser produces these nodes verbatim from the source; lowering to a
:class:`repro.circuits.QuantumCircuit` happens separately in
:mod:`repro.interop.frontend`.  Expression nodes evaluate themselves to
floats given a parameter environment (the constant-expression evaluator
of the grammar's ``exp`` production).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.interop.errors import QasmError


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    """Base class of parameter expressions."""

    line: int
    column: int

    def evaluate(self, env: Dict[str, float]) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class Number(Expr):
    value: float

    def evaluate(self, env: Dict[str, float]) -> float:
        return self.value


@dataclass(frozen=True)
class Pi(Expr):
    def evaluate(self, env: Dict[str, float]) -> float:
        return math.pi


@dataclass(frozen=True)
class Identifier(Expr):
    name: str

    def evaluate(self, env: Dict[str, float]) -> float:
        try:
            return env[self.name]
        except KeyError:
            raise QasmError(
                f"unknown parameter {self.name!r} in expression",
                self.line,
                self.column,
            ) from None


@dataclass(frozen=True)
class Unary(Expr):
    operator: str  # "-"
    operand: Expr

    def evaluate(self, env: Dict[str, float]) -> float:
        value = self.operand.evaluate(env)
        return -value if self.operator == "-" else value


#: Unary function names the grammar allows in parameter expressions.
FUNCTIONS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}


@dataclass(frozen=True)
class Call(Expr):
    function: str
    argument: Expr

    def evaluate(self, env: Dict[str, float]) -> float:
        try:
            return FUNCTIONS[self.function](self.argument.evaluate(env))
        except ValueError as error:  # e.g. sqrt(-1), ln(0)
            raise QasmError(
                f"cannot evaluate {self.function}: {error}", self.line, self.column
            ) from None


@dataclass(frozen=True)
class BinOp(Expr):
    operator: str  # + - * / ^
    left: Expr
    right: Expr

    def evaluate(self, env: Dict[str, float]) -> float:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.operator == "+":
            return left + right
        if self.operator == "-":
            return left - right
        if self.operator == "*":
            return left * right
        if self.operator == "/":
            if right == 0:
                raise QasmError("division by zero in expression", self.line, self.column)
            return left / right
        if self.operator == "^":
            return left**right
        raise QasmError(f"unknown operator {self.operator!r}", self.line, self.column)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Argument:
    """A quantum or classical argument: a register name, optionally indexed."""

    register: str
    index: Optional[int]
    line: int
    column: int

    def __repr__(self) -> str:
        return self.register if self.index is None else f"{self.register}[{self.index}]"


@dataclass(frozen=True)
class Statement:
    line: int
    column: int


@dataclass(frozen=True)
class Include(Statement):
    filename: str


@dataclass(frozen=True)
class QregDecl(Statement):
    name: str
    size: int


@dataclass(frozen=True)
class CregDecl(Statement):
    name: str
    size: int


@dataclass(frozen=True)
class GateCall(Statement):
    """Application of a named gate (includes the builtin ``U`` and ``CX``)."""

    name: str
    params: Tuple[Expr, ...]
    arguments: Tuple[Argument, ...]


@dataclass(frozen=True)
class Barrier(Statement):
    arguments: Tuple[Argument, ...]


@dataclass(frozen=True)
class Measure(Statement):
    source: Argument
    destination: Argument


@dataclass(frozen=True)
class Reset(Statement):
    argument: Argument


@dataclass(frozen=True)
class Conditional(Statement):
    """``if (creg == value) <op>;`` — recorded, but not lowerable."""

    register: str
    value: int
    body: Statement


@dataclass(frozen=True)
class GateDecl(Statement):
    """A ``gate`` definition with its (unlowered) body."""

    name: str
    params: Tuple[str, ...]
    qubits: Tuple[str, ...]
    body: Tuple[Statement, ...] = field(default=())
    opaque: bool = False


@dataclass(frozen=True)
class Program:
    """A parsed OpenQASM 2.0 program."""

    statements: Tuple[Statement, ...]
    version: str = "2.0"
