"""Error types of the OpenQASM interop layer.

Every error raised while lexing, parsing or lowering a QASM program
carries the 1-based source line and column it was detected at, so tools
(and the parser tests) can point users at the offending token.
"""

from __future__ import annotations

from typing import Optional


class QasmError(ValueError):
    """A malformed or unsupported OpenQASM 2.0 input.

    The ``line``/``column`` attributes are 1-based source coordinates;
    they are ``None`` only for errors that have no single location (for
    example an empty input).
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> None:
        self.bare_message = message
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = f"line {line}, column {column}: {message}"
        elif line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class QasmExportError(ValueError):
    """A circuit contains a gate the QASM exporter cannot represent."""
