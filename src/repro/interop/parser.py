"""Recursive-descent parser for OpenQASM 2.0.

Implements the grammar of the OpenQASM 2.0 specification over the token
stream of :mod:`repro.interop.lexer`, producing the typed AST of
:mod:`repro.interop.ast_nodes`.  Parameter expressions follow the usual
precedence (``+ -`` < ``* /`` < unary minus < ``^``, right-associative
exponentiation) and may call ``sin/cos/tan/exp/ln/sqrt``.

The parser is purely syntactic: semantic checks (register sizes, gate
arity, parameter environments) happen in :mod:`repro.interop.frontend`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.interop.ast_nodes import (
    Argument,
    Barrier,
    BinOp,
    Call,
    Conditional,
    CregDecl,
    Expr,
    FUNCTIONS,
    GateCall,
    GateDecl,
    Identifier,
    Include,
    Measure,
    Number,
    Pi,
    Program,
    QregDecl,
    Reset,
    Statement,
    Unary,
)
from repro.interop.errors import QasmError
from repro.interop.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type != "eof":
            self.position += 1
        return token

    def check(self, token_type: str) -> bool:
        return self.current.type == token_type

    def accept(self, token_type: str) -> Optional[Token]:
        if self.check(token_type):
            return self.advance()
        return None

    def expect(self, token_type: str, what: str = "") -> Token:
        if not self.check(token_type):
            wanted = what or f"{token_type!r}"
            found = self.current.text or "end of input"
            raise self.error(f"expected {wanted}, found {found!r}")
        return self.advance()

    def error(self, message: str) -> QasmError:
        return QasmError(message, self.current.line, self.current.column)

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        version = "2.0"
        if self.check("OPENQASM"):
            self.advance()
            token = self.expect("real", "a version number")
            version = token.text
            if version != "2.0":
                raise QasmError(
                    f"unsupported OpenQASM version {version!r} (only 2.0)",
                    token.line,
                    token.column,
                )
            self.expect(";")
        statements: List[Statement] = []
        while not self.check("eof"):
            statements.append(self.parse_statement())
        return Program(tuple(statements), version)

    def parse_statement(self) -> Statement:
        token = self.current
        if token.type == "include":
            self.advance()
            name = self.expect("string", "a quoted filename")
            self.expect(";")
            return Include(token.line, token.column, name.text)
        if token.type == "qreg":
            return self._parse_reg_decl(QregDecl)
        if token.type == "creg":
            return self._parse_reg_decl(CregDecl)
        if token.type == "gate":
            return self._parse_gate_decl()
        if token.type == "opaque":
            return self._parse_opaque_decl()
        if token.type == "if":
            return self._parse_conditional()
        return self.parse_qop()

    def parse_qop(self) -> Statement:
        token = self.current
        if token.type == "measure":
            self.advance()
            source = self.parse_argument()
            self.expect("->")
            destination = self.parse_argument()
            self.expect(";")
            return Measure(token.line, token.column, source, destination)
        if token.type == "reset":
            self.advance()
            argument = self.parse_argument()
            self.expect(";")
            return Reset(token.line, token.column, argument)
        if token.type == "barrier":
            self.advance()
            arguments = self._parse_argument_list()
            self.expect(";")
            return Barrier(token.line, token.column, tuple(arguments))
        return self.parse_gate_call()

    def parse_gate_call(self) -> GateCall:
        token = self.current
        if token.type in ("U", "CX"):
            self.advance()
            name = token.text
        else:
            name = self.expect("id", "a gate name").text
        params: Tuple[Expr, ...] = ()
        if self.accept("("):
            if not self.check(")"):
                params = tuple(self._parse_expression_list())
            self.expect(")")
        if name == "U" and len(params) != 3:
            raise QasmError(
                f"U takes exactly 3 parameters, got {len(params)}",
                token.line, token.column,
            )
        arguments = self._parse_argument_list()
        self.expect(";")
        return GateCall(token.line, token.column, name, params, tuple(arguments))

    def _parse_conditional(self) -> Conditional:
        token = self.advance()  # "if"
        self.expect("(")
        register = self.expect("id", "a classical register name").text
        self.expect("==")
        value = int(self.expect("int", "an integer").text)
        self.expect(")")
        body = self.parse_qop()
        return Conditional(token.line, token.column, register, value, body)

    def _parse_reg_decl(self, node_type):
        token = self.advance()  # "qreg" / "creg"
        name = self.expect("id", "a register name").text
        self.expect("[")
        size_token = self.expect("int", "a register size")
        size = int(size_token.text)
        if size <= 0:
            raise QasmError(
                f"register {name!r} must have positive size, got {size}",
                size_token.line, size_token.column,
            )
        self.expect("]")
        self.expect(";")
        return node_type(token.line, token.column, name, size)

    # ------------------------------------------------------------------
    # Gate declarations
    # ------------------------------------------------------------------
    def _parse_gate_decl(self) -> GateDecl:
        token = self.advance()  # "gate"
        name = self.expect("id", "a gate name").text
        params: Tuple[str, ...] = ()
        if self.accept("("):
            if not self.check(")"):
                params = tuple(self._parse_id_list())
            self.expect(")")
        qubits = tuple(self._parse_id_list())
        self.expect("{")
        body: List[Statement] = []
        while not self.check("}"):
            if self.check("eof"):
                raise self.error(f"unterminated body of gate {name!r}")
            if self.check("barrier"):
                barrier_token = self.advance()
                arguments = self._parse_argument_list()
                self.expect(";")
                body.append(
                    Barrier(barrier_token.line, barrier_token.column, tuple(arguments))
                )
            else:
                body.append(self.parse_gate_call())
        self.expect("}")
        self._check_gate_body_arguments(name, qubits, body)
        return GateDecl(token.line, token.column, name, params, qubits, tuple(body))

    def _parse_opaque_decl(self) -> GateDecl:
        token = self.advance()  # "opaque"
        name = self.expect("id", "a gate name").text
        params: Tuple[str, ...] = ()
        if self.accept("("):
            if not self.check(")"):
                params = tuple(self._parse_id_list())
            self.expect(")")
        qubits = tuple(self._parse_id_list())
        self.expect(";")
        return GateDecl(token.line, token.column, name, params, qubits, (), opaque=True)

    @staticmethod
    def _check_gate_body_arguments(
        name: str, qubits: Tuple[str, ...], body: List[Statement]
    ) -> None:
        """Gate bodies may only reference the declared qubit names, unindexed."""
        declared = set(qubits)
        for statement in body:
            arguments = (
                statement.arguments
                if isinstance(statement, (GateCall, Barrier))
                else ()
            )
            for argument in arguments:
                if argument.index is not None:
                    raise QasmError(
                        f"gate {name!r} body cannot index registers",
                        argument.line, argument.column,
                    )
                if argument.register not in declared:
                    raise QasmError(
                        f"gate {name!r} body references undeclared qubit "
                        f"{argument.register!r}",
                        argument.line, argument.column,
                    )

    # ------------------------------------------------------------------
    # Arguments and lists
    # ------------------------------------------------------------------
    def parse_argument(self) -> Argument:
        token = self.expect("id", "a register name")
        index: Optional[int] = None
        if self.accept("["):
            index_token = self.expect("int", "a qubit index")
            index = int(index_token.text)
            self.expect("]")
        return Argument(token.text, index, token.line, token.column)

    def _parse_argument_list(self) -> List[Argument]:
        arguments = [self.parse_argument()]
        while self.accept(","):
            arguments.append(self.parse_argument())
        return arguments

    def _parse_id_list(self) -> List[str]:
        names = [self.expect("id", "an identifier").text]
        while self.accept(","):
            names.append(self.expect("id", "an identifier").text)
        return names

    def _parse_expression_list(self) -> List[Expr]:
        expressions = [self.parse_expression()]
        while self.accept(","):
            expressions.append(self.parse_expression())
        return expressions

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expr:
        return self._parse_additive()

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.current.type in ("+", "-"):
            operator = self.advance()
            right = self._parse_multiplicative()
            left = BinOp(operator.line, operator.column, operator.type, left, right)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self.current.type in ("*", "/"):
            operator = self.advance()
            right = self._parse_unary()
            left = BinOp(operator.line, operator.column, operator.type, left, right)
        return left

    def _parse_unary(self) -> Expr:
        if self.check("-"):
            token = self.advance()
            return Unary(token.line, token.column, "-", self._parse_unary())
        return self._parse_power()

    def _parse_power(self) -> Expr:
        base = self._parse_atom()
        if self.check("^"):
            token = self.advance()
            # Right-associative: recurse through unary so -x parses on the right.
            exponent = self._parse_unary()
            return BinOp(token.line, token.column, "^", base, exponent)
        return base

    def _parse_atom(self) -> Expr:
        token = self.current
        if token.type in ("int", "real"):
            self.advance()
            return Number(token.line, token.column, float(token.text))
        if token.type == "pi":
            self.advance()
            return Pi(token.line, token.column)
        if token.type == "id":
            self.advance()
            if token.text in FUNCTIONS and self.accept("("):
                argument = self.parse_expression()
                self.expect(")")
                return Call(token.line, token.column, token.text, argument)
            return Identifier(token.line, token.column, token.text)
        if token.type == "(":
            self.advance()
            expression = self.parse_expression()
            self.expect(")")
            return expression
        raise self.error(
            f"expected an expression, found {token.text or 'end of input'!r}"
        )


def parse_qasm(source: str) -> Program:
    """Parse OpenQASM 2.0 source text into a :class:`Program` AST."""
    if not source.strip():
        raise QasmError("empty OpenQASM input")
    return _Parser(tokenize(source)).parse_program()
