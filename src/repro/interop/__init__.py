"""OpenQASM 2.0 interchange: frontend, exporter, bundled benchmark suite.

The interop layer turns any public QASM corpus into fuel for the
compilation stack::

    from repro.interop import load_qasm_file, circuit_to_qasm, load_suite

    circuit = load_qasm_file("benchmark.qasm")          # frontend
    result = repro.compile(circuit, target, "sat_p")
    text = circuit_to_qasm(result.adapted_circuit)      # exporter

    for entry in load_suite():                          # bundled suite
        print(entry.name, entry.metadata())

``repro.compile`` also accepts QASM source strings and ``.qasm`` paths
directly, and JSON workload manifests gain ``qasm`` and ``suite`` kinds
(:mod:`repro.workloads.manifest`).
"""

from repro.interop.errors import QasmError, QasmExportError
from repro.interop.exporter import circuit_to_qasm, write_qasm_file
from repro.interop.frontend import (
    circuit_from_qasm,
    coerce_circuit_input,
    load_qasm_file,
    looks_like_qasm_path,
    qasm_to_circuit,
)
from repro.interop.parser import parse_qasm
from repro.interop.suite import (
    SuiteEntry,
    load_suite,
    suite_circuit,
    suite_metadata,
    suite_names,
)

__all__ = [
    "QasmError",
    "QasmExportError",
    "parse_qasm",
    "qasm_to_circuit",
    "circuit_from_qasm",
    "load_qasm_file",
    "looks_like_qasm_path",
    "coerce_circuit_input",
    "circuit_to_qasm",
    "write_qasm_file",
    "SuiteEntry",
    "load_suite",
    "suite_names",
    "suite_circuit",
    "suite_metadata",
]
