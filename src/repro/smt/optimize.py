"""Optimization modulo theories (OMT) on top of the lazy SMT solver.

The :class:`Optimize` facade mirrors the subset of the ``z3.Optimize`` API
used by the circuit-adaptation model: assert constraints with ``add``,
register a single linear objective with ``maximize`` / ``minimize``, call
``check`` and read back ``model``.

Optimization uses objective-strengthening: whenever the SMT solver finds a
theory-consistent Boolean skeleton, the simplex theory solver maximizes the
objective within that skeleton (primal simplex), the value is recorded, and
a constraint requiring a strictly better objective is added.  The loop ends
when the strengthened problem becomes unsatisfiable; the best recorded model
is optimal.  Termination follows from the finite number of Boolean
skeletons, since each iteration rules out every skeleton whose optimum does
not exceed the recorded value.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.resilience.budget import current_budget
from repro.smt.rational import DeltaRational
from repro.smt.solver import CheckResult, Model, SmtSolver
from repro.smt.terms import Comparison, Expr, LinearExpr
from repro.telemetry.instruments import record_omt_rounds
from repro.telemetry.registry import telemetry_enabled
from repro.trace.tracer import current_tracer

#: Sampling schedule of the ``omt.round`` trace events (same shape as
#: the SMT check sampling: full head, strided tail).
TRACE_ROUND_HEAD = 32
TRACE_ROUND_STRIDE = 8


class ObjectiveHandle:
    """Handle to a registered objective; exposes its optimal value."""

    def __init__(self, expression: LinearExpr, sense: str) -> None:
        self.expression = expression
        self.sense = sense
        self._value: Optional[Fraction] = None
        self.unbounded = False

    def value(self) -> Fraction:
        """Return the optimal objective value (in the original sense)."""
        if self.unbounded:
            raise RuntimeError("objective is unbounded")
        if self._value is None:
            raise RuntimeError("objective value not available; call check() first")
        return self._value


class Optimize:
    """Optimizing SMT solver facade (single linear objective)."""

    def __init__(
        self,
        max_improvement_rounds: int = 10000,
        incremental_theory: bool = True,
    ) -> None:
        self._solver = SmtSolver(incremental_theory=incremental_theory)
        self._objective: Optional[ObjectiveHandle] = None
        self._max_rounds = max_improvement_rounds
        self._best_model: Optional[Model] = None
        self.improvement_rounds = 0

    # ------------------------------------------------------------------
    def add(self, *expressions: Expr) -> None:
        """Assert one or more constraints."""
        self._solver.add(*expressions)

    def maximize(self, expression: LinearExpr) -> ObjectiveHandle:
        """Register a linear objective to maximize."""
        if self._objective is not None:
            raise RuntimeError("only a single objective is supported")
        self._objective = ObjectiveHandle(expression, "max")
        return self._objective

    def minimize(self, expression: LinearExpr) -> ObjectiveHandle:
        """Register a linear objective to minimize (maximizes its negation)."""
        if self._objective is not None:
            raise RuntimeError("only a single objective is supported")
        self._objective = ObjectiveHandle(expression, "min")
        return self._objective

    # ------------------------------------------------------------------
    def check(self) -> CheckResult:
        """Solve, optimizing the registered objective if any."""
        if self._objective is None:
            result = self._solver.check()
            if result == CheckResult.SAT:
                self._best_model = self._solver.model()
            return result
        return self._check_with_objective()

    def _check_with_objective(self) -> CheckResult:
        assert self._objective is not None
        objective_expr = self._objective.expression
        if self._objective.sense == "min":
            working_expr = -objective_expr
        else:
            working_expr = objective_expr

        tracer = current_tracer()
        traced = tracer.enabled
        budget = current_budget()
        metered = telemetry_enabled()
        rounds_at_entry = self.improvement_rounds
        omt_token = tracer.begin("omt.optimize", "solver",
                                 sense=self._objective.sense) if traced else None
        try:
            best_value: Optional[Fraction] = None
            result = self._solver.check()
            if result != CheckResult.SAT:
                return result

            for round_index in range(self._max_rounds):
                if budget is not None:
                    budget.charge("omt.round", rounds=1)
                self.improvement_rounds = round_index + 1
                simplex = self._solver.last_simplex()
                assert simplex is not None
                optimum = simplex.maximize(dict(working_expr.coeffs))
                if optimum is None:
                    # Unbounded within this skeleton, hence unbounded globally.
                    self._objective.unbounded = True
                    self._best_model = self._solver.model()
                    return CheckResult.SAT
                skeleton_best = optimum.value + working_expr.constant
                bool_values = self._solver.model().bool_values()
                self._best_model = Model(bool_values, simplex.model())
                if best_value is None or skeleton_best > best_value:
                    best_value = skeleton_best
                if traced and (self.improvement_rounds <= TRACE_ROUND_HEAD
                               or self.improvement_rounds % TRACE_ROUND_STRIDE == 0):
                    tracer.event(
                        "omt.round", "solver",
                        d_rounds=1,
                        round=self.improvement_rounds,
                        best=float(best_value),
                    )
                # Require a strictly better objective value and re-solve.
                improvement = Comparison.build(
                    LinearExpr.constant_expr(best_value), working_expr, "<"
                )
                self._solver.add(improvement)
                result = self._solver.check()
                if result == CheckResult.UNSAT:
                    self._finalize_objective(best_value)
                    return CheckResult.SAT
                if result == CheckResult.UNKNOWN:
                    self._finalize_objective(best_value)
                    return CheckResult.SAT
            self._finalize_objective(best_value)
            return CheckResult.SAT
        finally:
            if omt_token is not None:
                tracer.end(omt_token, rounds=self.improvement_rounds)
            if metered:
                record_omt_rounds(self.improvement_rounds - rounds_at_entry)

    def _finalize_objective(self, best_value: Optional[Fraction]) -> None:
        assert self._objective is not None
        if best_value is None:
            return
        if self._objective.sense == "min":
            self._objective._value = -best_value
        else:
            self._objective._value = best_value

    # ------------------------------------------------------------------
    def model(self) -> Model:
        """Return the best model found by the last :meth:`check` call."""
        if self._best_model is None:
            raise RuntimeError("no model available; call check() first and get SAT")
        return self._best_model

    def statistics(self) -> dict:
        """Return solver statistics (theory checks/conflicts, SAT counters, OMT rounds)."""
        stats = self._solver.statistics()
        stats["improvement_rounds"] = self.improvement_rounds
        return stats
