"""Tseitin conversion of Boolean structure into CNF over SAT variables.

The converter walks an :class:`repro.smt.terms.Expr`, allocates one SAT
variable per Boolean variable and per distinct theory atom, introduces
definition variables for internal connectives, and emits equisatisfiable
clauses.  Equality atoms are split into a conjunction of two inequalities so
that the theory solver only ever sees (possibly negated) ``<=`` / ``<``
atoms.
"""

from __future__ import annotations

from typing import Dict, List

from repro.smt.terms import (
    And,
    BoolVal,
    BoolVar,
    Comparison,
    Expr,
    Iff,
    Implies,
    Ite,
    LinearExpr,
    Not,
    Or,
)


class CnfConverter:
    """Converts expressions to CNF, sharing subformula definitions."""

    def __init__(self) -> None:
        self._next_var = 1
        self.clauses: List[List[int]] = []
        self.bool_vars: Dict[str, int] = {}
        self.atoms: Dict[tuple, int] = {}
        self.atom_by_var: Dict[int, Comparison] = {}
        self._definitions: Dict[tuple, int] = {}
        self._true_var: int | None = None

    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh SAT variable."""
        var = self._next_var
        self._next_var += 1
        return var

    def num_vars(self) -> int:
        """Return the number of SAT variables allocated so far."""
        return self._next_var - 1

    # ------------------------------------------------------------------
    def add_assertion(self, expression: Expr) -> None:
        """Assert ``expression`` (add clauses forcing it to be true)."""
        literal = self.encode(expression)
        self.clauses.append([literal])

    def literal_for_bool(self, name: str) -> int:
        """Return (allocating if needed) the SAT variable of a Boolean var."""
        if name not in self.bool_vars:
            self.bool_vars[name] = self.new_var()
        return self.bool_vars[name]

    def literal_for_atom(self, atom: Comparison) -> int:
        """Return (allocating if needed) the SAT variable of a theory atom."""
        if atom.op == "=":
            raise ValueError("equality atoms must be split before reaching the theory")
        key = atom.key()
        if key not in self.atoms:
            var = self.new_var()
            self.atoms[key] = var
            self.atom_by_var[var] = atom
        return self.atoms[key]

    # ------------------------------------------------------------------
    def _true_literal(self) -> int:
        if self._true_var is None:
            self._true_var = self.new_var()
            self.clauses.append([self._true_var])
        return self._true_var

    def _define(self, key: tuple, make_clauses) -> int:
        """Return a definition variable for ``key``, creating it on demand."""
        if key in self._definitions:
            return self._definitions[key]
        var = self.new_var()
        self._definitions[key] = var
        make_clauses(var)
        return var

    def encode(self, expression: Expr) -> int:
        """Return a SAT literal equivalent to ``expression``.

        Public entry point: the SMT solver uses it to translate assumption
        expressions, and encodings are shared (hash-consed), so repeated
        calls with the same expression return the same literal.
        """
        if isinstance(expression, BoolVal):
            true_lit = self._true_literal()
            return true_lit if expression.value else -true_lit
        if isinstance(expression, BoolVar):
            return self.literal_for_bool(expression.name)
        if isinstance(expression, Comparison):
            if expression.op == "=":
                return self.encode(self._split_equality(expression))
            return self.literal_for_atom(expression)
        if isinstance(expression, Not):
            return -self.encode(expression.operand)
        if isinstance(expression, And):
            return self._encode_and(expression)
        if isinstance(expression, Or):
            return self._encode_or(expression)
        if isinstance(expression, Implies):
            return self._encode_or(Or(Not(expression.antecedent), expression.consequent))
        if isinstance(expression, Iff):
            return self._encode_iff(expression)
        if isinstance(expression, Ite):
            rewritten = And(
                Implies(expression.condition, expression.then_branch),
                Implies(Not(expression.condition), expression.else_branch),
            )
            return self._encode_and(rewritten)
        raise TypeError(f"cannot encode expression of type {type(expression).__name__}")

    @staticmethod
    def _split_equality(atom: Comparison) -> Expr:
        """Rewrite ``p = b`` as ``p <= b and -p <= -b``."""
        poly = atom.poly
        negated_poly = LinearExpr(
            {name: -coeff for name, coeff in poly.coeffs.items()}, 0
        )
        return And(
            Comparison(poly, "<=", atom.bound),
            Comparison(negated_poly, "<=", -atom.bound),
        )

    def _encode_and(self, expression: And) -> int:
        if not expression.operands:
            return self._true_literal()
        literals = [self.encode(operand) for operand in expression.operands]
        if len(literals) == 1:
            return literals[0]
        key = ("and",) + tuple(sorted(literals))

        def make(var: int) -> None:
            for literal in literals:
                self.clauses.append([-var, literal])
            self.clauses.append([var] + [-literal for literal in literals])

        return self._define(key, make)

    def _encode_or(self, expression: Or) -> int:
        if not expression.operands:
            return -self._true_literal()
        literals = [self.encode(operand) for operand in expression.operands]
        if len(literals) == 1:
            return literals[0]
        key = ("or",) + tuple(sorted(literals))

        def make(var: int) -> None:
            for literal in literals:
                self.clauses.append([var, -literal])
            self.clauses.append([-var] + list(literals))

        return self._define(key, make)

    def _encode_iff(self, expression: Iff) -> int:
        left = self.encode(expression.left)
        right = self.encode(expression.right)
        key = ("iff", min(left, right), max(left, right))

        def make(var: int) -> None:
            self.clauses.append([-var, -left, right])
            self.clauses.append([-var, left, -right])
            self.clauses.append([var, left, right])
            self.clauses.append([var, -left, -right])

        return self._define(key, make)
