"""Lazy DPLL(T) SMT solver for linear real arithmetic.

The solver uses the classic lazy (offline) SMT architecture:

1. the Boolean structure of all assertions is Tseitin-encoded and handed to
   the CDCL SAT solver (:class:`repro.sat.Solver`);
2. each complete propositional model induces a conjunction of theory
   literals (bounds on linear forms) which is checked by the simplex-based
   theory solver (:class:`repro.smt.simplex.Simplex`);
3. theory conflicts are returned as small sets of inconsistent literals and
   added back to the SAT solver as blocking clauses;
4. the loop repeats until a theory-consistent propositional model is found
   (SAT) or the SAT solver reports unsatisfiability (UNSAT).

Problem sizes in the circuit-adaptation model are modest (tens of Boolean
selection variables, a few hundred scheduling atoms), for which this simple
architecture is entirely adequate.
"""

from __future__ import annotations

from enum import Enum
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.resilience.budget import current_budget
from repro.sat import Solver as SatSolver
from repro.smt.cnf import CnfConverter
from repro.smt.rational import DeltaRational
from repro.smt.simplex import Simplex
from repro.smt.terms import BoolVar, Comparison, Expr, LinearExpr
from repro.telemetry.instruments import record_theory
from repro.telemetry.registry import telemetry_enabled
from repro.trace.tracer import current_tracer

#: Sampling schedule of the ``smt.check`` trace events: the first this
#: many theory checks are all traced, later ones only every
#: :data:`TRACE_CHECK_STRIDE`-th — bounded traces on check-heavy runs.
TRACE_CHECK_HEAD = 32
TRACE_CHECK_STRIDE = 8


class CheckResult(Enum):
    """Result of an SMT ``check`` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying assignment: Boolean values plus rational real values."""

    def __init__(
        self,
        bool_values: Mapping[str, bool],
        real_values: Mapping[str, Fraction],
    ) -> None:
        self._bool_values = dict(bool_values)
        self._real_values = dict(real_values)

    def __getitem__(self, key):
        """Evaluate a :class:`BoolVar`, :class:`LinearExpr` or variable name."""
        if isinstance(key, BoolVar):
            return self._bool_values.get(key.name, False)
        if isinstance(key, LinearExpr):
            return self.eval_linear(key)
        if isinstance(key, str):
            if key in self._bool_values:
                return self._bool_values[key]
            return self._real_values.get(key, Fraction(0))
        raise TypeError(f"cannot evaluate {key!r} in a model")

    def eval_linear(self, expression: LinearExpr) -> Fraction:
        """Evaluate a linear expression under the model."""
        total = expression.constant
        for name, coeff in expression.coeffs.items():
            total += coeff * self._real_values.get(name, Fraction(0))
        return total

    def eval_bool(self, name: str) -> bool:
        """Return the value of a Boolean variable (False when unconstrained)."""
        return self._bool_values.get(name, False)

    def bool_values(self) -> Dict[str, bool]:
        """Return all Boolean variable values."""
        return dict(self._bool_values)

    def real_values(self) -> Dict[str, Fraction]:
        """Return all real variable values."""
        return dict(self._real_values)

    def __repr__(self) -> str:
        bools = ", ".join(f"{k}={v}" for k, v in sorted(self._bool_values.items()))
        reals = ", ".join(f"{k}={v}" for k, v in sorted(self._real_values.items()))
        return f"Model({bools}; {reals})"


class SmtSolver:
    """Lazy DPLL(T) solver for Boolean combinations of linear real atoms.

    By default the theory solver is *incremental*: one simplex instance
    persists across all theory checks (and across the OMT layer's
    objective-strengthening rounds).  Between checks only the asserted
    bounds are retracted (:meth:`Simplex.undo_to`); the tableau rows, the
    slack variables of the atoms' linear forms and the current assignment
    are kept and warm-started, so repeated checks avoid rebuilding the
    tableau from scratch.  The learned clauses of the Boolean skeleton are
    likewise kept by the persistent CDCL core.  ``incremental_theory=False``
    restores the legacy rebuild-per-check behaviour (kept as the perf
    baseline and as a differential-testing oracle).
    """

    def __init__(
        self,
        max_theory_iterations: int = 100000,
        incremental_theory: bool = True,
    ) -> None:
        self._converter = CnfConverter()
        self._assertions: List[Expr] = []
        self._clauses_dispatched = 0
        self._sat = SatSolver()
        self._max_theory_iterations = max_theory_iterations
        self._incremental_theory = incremental_theory
        self._simplex: Optional[Simplex] = None
        # Atom SAT-var -> slack-variable index in the persistent simplex;
        # valid only in incremental mode (fresh instances renumber slacks).
        self._atom_slack: Dict[int, int] = {}
        self._model: Optional[Model] = None
        self._last_simplex: Optional[Simplex] = None
        self._stats: Dict[str, int] = {
            "theory_checks": 0,
            "theory_conflicts": 0,
            "theory_pivots": 0,
        }

    # ------------------------------------------------------------------
    def add(self, *expressions: Expr) -> None:
        """Assert one or more Boolean expressions."""
        for expression in expressions:
            self._assertions.append(expression)
            self._converter.add_assertion(expression)

    def assertions(self) -> List[Expr]:
        """Return the asserted expressions."""
        return list(self._assertions)

    # ------------------------------------------------------------------
    def _sync_clauses(self) -> None:
        clauses = self._converter.clauses
        while self._clauses_dispatched < len(clauses):
            self._sat.add_clause(clauses[self._clauses_dispatched])
            self._clauses_dispatched += 1

    def check(self, assumptions: Tuple[Expr, ...] = ()) -> CheckResult:
        """Check satisfiability of the asserted formulas."""
        assumption_literals = [self._converter.encode(expr) for expr in assumptions]
        self._sync_clauses()
        tracer = current_tracer()
        traced = tracer.enabled
        budget = current_budget()
        pivots_charged = self._stats["theory_pivots"]
        # Telemetry deltas flush once per check() call, including aborts
        # (budget.charge raises CompileInterrupted mid-loop).
        metered = telemetry_enabled()
        entry = (self._stats["theory_checks"], self._stats["theory_pivots"],
                 self._stats["theory_conflicts"])
        try:
            for _ in range(self._max_theory_iterations):
                if budget is not None:
                    # Charge the pivots of the previous iteration and enforce
                    # the deadline once per theory check (the SAT sub-solve
                    # below has its own per-conflict checkpoint).
                    budget.charge(
                        "smt.check",
                        pivots=self._stats["theory_pivots"] - pivots_charged,
                    )
                    pivots_charged = self._stats["theory_pivots"]
                self._stats["theory_checks"] += 1
                pivots_before = self._stats["theory_pivots"] if traced else 0
                if not self._sat.solve(assumption_literals):
                    self._model = None
                    return CheckResult.UNSAT
                sat_model = self._sat.model()
                simplex, conflict = self._theory_check(sat_model)
                if traced:
                    index = self._stats["theory_checks"]
                    if index <= TRACE_CHECK_HEAD or index % TRACE_CHECK_STRIDE == 0:
                        tracer.event(
                            "smt.check", "solver",
                            check=index,
                            consistent=conflict is None,
                            d_pivots=self._stats["theory_pivots"] - pivots_before,
                            theory_conflicts=self._stats["theory_conflicts"],
                        )
                if conflict is None:
                    self._store_model(sat_model, simplex)
                    self._last_simplex = simplex
                    return CheckResult.SAT
                self._stats["theory_conflicts"] += 1
                blocking = [-literal for literal in conflict]
                self._converter.clauses.append(blocking)
                self._sync_clauses()
            return CheckResult.UNKNOWN
        finally:
            if metered:
                record_theory(
                    checks=self._stats["theory_checks"] - entry[0],
                    pivots=self._stats["theory_pivots"] - entry[1],
                    conflicts=self._stats["theory_conflicts"] - entry[2],
                )

    # ------------------------------------------------------------------
    def _working_simplex(self) -> Simplex:
        """Return the theory solver for the next check.

        Incremental mode reuses one instance, retracting every bound
        asserted by the previous check while keeping tableau and
        assignment; legacy mode builds a fresh instance every time.
        """
        if not self._incremental_theory:
            return Simplex()
        if self._simplex is None:
            self._simplex = Simplex()
        else:
            self._simplex.undo_to(0)
        return self._simplex

    def _theory_check(
        self, sat_model: Mapping[int, bool]
    ) -> Tuple[Simplex, Optional[List[int]]]:
        """Check the theory literals implied by a propositional model.

        Returns the simplex instance and either ``None`` (consistent) or the
        conflicting subset of SAT literals.
        """
        simplex = self._working_simplex()
        # Accumulate only the pivots of this check, so the counter means
        # the same thing in incremental mode (shared instance, also
        # pivoted by OMT maximize calls) and legacy mode (fresh instance
        # per check).
        pivots_before = simplex.pivots
        try:
            for var, atom in self._converter.atom_by_var.items():
                if var not in sat_model:
                    continue
                literal = var if sat_model[var] else -var
                slack = self._slack_for_atom(simplex, var, atom)
                conflict = self._assert_atom(simplex, slack, atom, sat_model[var], literal)
                if conflict is not None:
                    return simplex, conflict
            conflict = simplex.check()
            if conflict is not None:
                return simplex, list(conflict)
            return simplex, None
        finally:
            self._stats["theory_pivots"] += simplex.pivots - pivots_before

    def _slack_for_atom(self, simplex: Simplex, var: int, atom: Comparison) -> int:
        """Resolve (and in incremental mode memoize) the atom's slack variable."""
        if not self._incremental_theory:
            return simplex.slack_for(atom.poly.coeffs)
        slack = self._atom_slack.get(var)
        if slack is None:
            slack = simplex.slack_for(atom.poly.coeffs)
            self._atom_slack[var] = slack
        return slack

    @staticmethod
    def _assert_atom(
        simplex: Simplex, slack: int, atom: Comparison, value: bool, literal: int
    ) -> Optional[List[int]]:
        """Assert a (possibly negated) atom into the simplex solver."""
        if value:
            if atom.op == "<=":
                bound = DeltaRational.of(atom.bound)
                conflict = simplex.assert_upper(slack, bound, literal)
            else:  # "<"
                bound = DeltaRational.of(atom.bound, -1)
                conflict = simplex.assert_upper(slack, bound, literal)
        else:
            if atom.op == "<=":
                # not (p <= b)  <=>  p > b
                bound = DeltaRational.of(atom.bound, 1)
                conflict = simplex.assert_lower(slack, bound, literal)
            else:  # not (p < b)  <=>  p >= b
                bound = DeltaRational.of(atom.bound)
                conflict = simplex.assert_lower(slack, bound, literal)
        if conflict is None:
            return None
        return list(conflict)

    def _store_model(self, sat_model: Mapping[int, bool], simplex: Simplex) -> None:
        bool_values = {
            name: sat_model.get(var, False)
            for name, var in self._converter.bool_vars.items()
        }
        real_values = simplex.model()
        self._model = Model(bool_values, real_values)

    # ------------------------------------------------------------------
    def model(self) -> Model:
        """Return the model of the last successful :meth:`check` call."""
        if self._model is None:
            raise RuntimeError("no model available; call check() first and get SAT")
        return self._model

    def last_simplex(self) -> Optional[Simplex]:
        """Return the theory solver state of the last SAT answer (for OMT).

        In incremental mode the returned instance still holds the bounds of
        the satisfying Boolean skeleton, so the OMT layer can maximize over
        it directly; the bounds are retracted at the start of the next
        :meth:`check` call.
        """
        return self._last_simplex

    def statistics(self) -> Dict[str, int]:
        """Aggregate solver statistics: theory counters plus SAT counters.

        SAT-core counters (conflicts, decisions, propagations, ...) are
        included with a ``sat_`` prefix, so callers never need to reach
        into the private SAT solver.
        """
        stats = dict(self._stats)
        for key, value in self._sat.statistics.as_dict().items():
            stats[f"sat_{key}"] = value
        return stats
