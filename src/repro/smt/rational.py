"""Delta-rationals: exact rationals extended with an infinitesimal.

Strict inequalities such as ``x < 3`` cannot be represented directly as
bounds over the rationals.  The standard trick (Dutertre & de Moura, 2006)
is to work in the ordered field Q[delta] of pairs ``value + coeff * delta``
where ``delta`` is a positive infinitesimal: ``x < 3`` becomes
``x <= 3 - delta``.  At the end of solving, a small concrete value for
``delta`` can be chosen that satisfies every asserted bound, turning the
symbolic assignment into a plain rational model.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

Rational = Union[int, float, Fraction]


def to_fraction(value: Rational) -> Fraction:
    """Convert an int/float/Fraction to an exact :class:`Fraction`."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**12)
    raise TypeError(f"cannot interpret {value!r} as a rational number")


@dataclass(frozen=True)
class DeltaRational:
    """A number of the form ``value + coeff * delta`` with ``delta`` infinitesimal."""

    value: Fraction
    coeff: Fraction = Fraction(0)

    # ------------------------------------------------------------------
    @staticmethod
    def of(value: Rational, coeff: Rational = 0) -> "DeltaRational":
        """Build a delta-rational from plain numbers."""
        return DeltaRational(to_fraction(value), to_fraction(coeff))

    # ------------------------------------------------------------------
    def __add__(self, other: "DeltaRational") -> "DeltaRational":
        return DeltaRational(self.value + other.value, self.coeff + other.coeff)

    def __sub__(self, other: "DeltaRational") -> "DeltaRational":
        return DeltaRational(self.value - other.value, self.coeff - other.coeff)

    def __neg__(self) -> "DeltaRational":
        return DeltaRational(-self.value, -self.coeff)

    def scale(self, factor: Rational) -> "DeltaRational":
        """Multiply by a plain rational scalar."""
        fraction = to_fraction(factor)
        return DeltaRational(self.value * fraction, self.coeff * fraction)

    # ------------------------------------------------------------------
    def __lt__(self, other: "DeltaRational") -> bool:
        return (self.value, self.coeff) < (other.value, other.coeff)

    def __le__(self, other: "DeltaRational") -> bool:
        return (self.value, self.coeff) <= (other.value, other.coeff)

    def __gt__(self, other: "DeltaRational") -> bool:
        return (self.value, self.coeff) > (other.value, other.coeff)

    def __ge__(self, other: "DeltaRational") -> bool:
        return (self.value, self.coeff) >= (other.value, other.coeff)

    # ------------------------------------------------------------------
    def substitute_delta(self, delta: Fraction) -> Fraction:
        """Evaluate the number for a concrete positive ``delta``."""
        return self.value + self.coeff * delta

    def __repr__(self) -> str:
        if self.coeff == 0:
            return f"{self.value}"
        sign = "+" if self.coeff > 0 else "-"
        return f"{self.value} {sign} {abs(self.coeff)}*delta"


ZERO = DeltaRational(Fraction(0))
