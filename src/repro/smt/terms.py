"""Expression terms for the SMT solver.

Two families of expressions are provided:

* :class:`LinearExpr` -- linear real arithmetic terms (a rational constant
  plus a rational-weighted sum of real variables).  Comparisons between
  linear expressions produce :class:`Comparison` atoms.
* Boolean expressions -- :class:`BoolVar`, :class:`BoolVal`, :class:`Not`,
  :class:`And`, :class:`Or`, :class:`Implies`, :class:`Iff`, :class:`Ite`
  and :class:`Comparison` (theory atoms are Boolean-valued).

Operators are overloaded so models read naturally::

    x, y = Real("x"), Real("y")
    use_fast = Bool("use_fast")
    constraint = Implies(use_fast, x + 2 * y <= RealVal(10))

Expressions are immutable and structurally hashable, which the CNF
conversion relies on to share subformulas.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

from repro.smt.rational import Rational, to_fraction


class Expr:
    """Base class for Boolean-valued expressions."""

    def key(self) -> tuple:
        """Structural identity key used for hashing and equality."""
        raise NotImplementedError

    def __hash__(self) -> int:
        return hash(self.key())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self.key() == other.key()

    # Boolean connective sugar -----------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    def implies(self, other: "Expr") -> "Expr":
        """Return the implication ``self -> other``."""
        return Implies(self, other)

    def iff(self, other: "Expr") -> "Expr":
        """Return the bi-implication ``self <-> other``."""
        return Iff(self, other)


class BoolVal(Expr):
    """A Boolean constant (``True`` or ``False``)."""

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def key(self) -> tuple:
        return ("const", self.value)

    def __repr__(self) -> str:
        return "true" if self.value else "false"


class BoolVar(Expr):
    """A named Boolean variable."""

    def __init__(self, name: str) -> None:
        self.name = name

    def key(self) -> tuple:
        return ("bvar", self.name)

    def __repr__(self) -> str:
        return self.name


class Not(Expr):
    """Logical negation."""

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def key(self) -> tuple:
        return ("not", self.operand.key())

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


class And(Expr):
    """N-ary conjunction."""

    def __init__(self, *operands: Expr) -> None:
        flattened: list[Expr] = []
        for operand in operands:
            if isinstance(operand, And):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        self.operands: Tuple[Expr, ...] = tuple(flattened)

    def key(self) -> tuple:
        return ("and",) + tuple(operand.key() for operand in self.operands)

    def __repr__(self) -> str:
        return "(and " + " ".join(repr(operand) for operand in self.operands) + ")"


class Or(Expr):
    """N-ary disjunction."""

    def __init__(self, *operands: Expr) -> None:
        flattened: list[Expr] = []
        for operand in operands:
            if isinstance(operand, Or):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        self.operands: Tuple[Expr, ...] = tuple(flattened)

    def key(self) -> tuple:
        return ("or",) + tuple(operand.key() for operand in self.operands)

    def __repr__(self) -> str:
        return "(or " + " ".join(repr(operand) for operand in self.operands) + ")"


class Implies(Expr):
    """Implication ``antecedent -> consequent``."""

    def __init__(self, antecedent: Expr, consequent: Expr) -> None:
        self.antecedent = antecedent
        self.consequent = consequent

    def key(self) -> tuple:
        return ("implies", self.antecedent.key(), self.consequent.key())

    def __repr__(self) -> str:
        return f"(=> {self.antecedent!r} {self.consequent!r})"


class Iff(Expr):
    """Bi-implication."""

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def key(self) -> tuple:
        return ("iff", self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"(= {self.left!r} {self.right!r})"


class Ite(Expr):
    """Boolean if-then-else: ``condition ? then_branch : else_branch``."""

    def __init__(self, condition: Expr, then_branch: Expr, else_branch: Expr) -> None:
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def key(self) -> tuple:
        return (
            "ite",
            self.condition.key(),
            self.then_branch.key(),
            self.else_branch.key(),
        )

    def __repr__(self) -> str:
        return f"(ite {self.condition!r} {self.then_branch!r} {self.else_branch!r})"


# ----------------------------------------------------------------------
# Linear real arithmetic
# ----------------------------------------------------------------------
NumberLike = Union[Rational, "LinearExpr"]


class LinearExpr:
    """A linear expression ``constant + sum(coeff_i * var_i)`` over the reals.

    Instances are immutable; arithmetic operators return new expressions.
    Variables are identified by their string names.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(
        self,
        coeffs: Mapping[str, Fraction] | None = None,
        constant: Rational = 0,
    ) -> None:
        cleaned: Dict[str, Fraction] = {}
        if coeffs:
            for name, coeff in coeffs.items():
                fraction = to_fraction(coeff)
                if fraction != 0:
                    cleaned[name] = fraction
        self.coeffs: Dict[str, Fraction] = cleaned
        self.constant: Fraction = to_fraction(constant)

    # ------------------------------------------------------------------
    @staticmethod
    def variable(name: str) -> "LinearExpr":
        """Return the expression consisting of a single variable."""
        return LinearExpr({name: Fraction(1)})

    @staticmethod
    def constant_expr(value: Rational) -> "LinearExpr":
        """Return a constant expression."""
        return LinearExpr({}, value)

    @staticmethod
    def _coerce(value: NumberLike) -> "LinearExpr":
        if isinstance(value, LinearExpr):
            return value
        return LinearExpr.constant_expr(value)

    def is_constant(self) -> bool:
        """Return True when the expression has no variable terms."""
        return not self.coeffs

    def variables(self) -> Tuple[str, ...]:
        """Return the names of the variables appearing in the expression."""
        return tuple(sorted(self.coeffs))

    # Arithmetic --------------------------------------------------------
    def __add__(self, other: NumberLike) -> "LinearExpr":
        other_expr = self._coerce(other)
        coeffs = dict(self.coeffs)
        for name, coeff in other_expr.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + coeff
        return LinearExpr(coeffs, self.constant + other_expr.constant)

    def __radd__(self, other: NumberLike) -> "LinearExpr":
        return self.__add__(other)

    def __sub__(self, other: NumberLike) -> "LinearExpr":
        return self.__add__(self._coerce(other).__neg__())

    def __rsub__(self, other: NumberLike) -> "LinearExpr":
        return self._coerce(other).__sub__(self)

    def __neg__(self) -> "LinearExpr":
        return LinearExpr(
            {name: -coeff for name, coeff in self.coeffs.items()}, -self.constant
        )

    def __mul__(self, factor: Rational) -> "LinearExpr":
        if isinstance(factor, LinearExpr):
            if factor.is_constant():
                factor = factor.constant
            elif self.is_constant():
                return factor.__mul__(self.constant)
            else:
                raise TypeError("products of two non-constant expressions are not linear")
        fraction = to_fraction(factor)
        return LinearExpr(
            {name: coeff * fraction for name, coeff in self.coeffs.items()},
            self.constant * fraction,
        )

    def __rmul__(self, factor: Rational) -> "LinearExpr":
        return self.__mul__(factor)

    def __truediv__(self, divisor: Rational) -> "LinearExpr":
        fraction = to_fraction(divisor)
        if fraction == 0:
            raise ZeroDivisionError("division of a linear expression by zero")
        return self.__mul__(Fraction(1, 1) / fraction)

    # Comparisons produce theory atoms ---------------------------------
    def __le__(self, other: NumberLike) -> "Comparison":
        return Comparison.build(self, other, "<=")

    def __lt__(self, other: NumberLike) -> "Comparison":
        return Comparison.build(self, other, "<")

    def __ge__(self, other: NumberLike) -> "Comparison":
        return Comparison.build(self._coerce(other), self, "<=")

    def __gt__(self, other: NumberLike) -> "Comparison":
        return Comparison.build(self._coerce(other), self, "<")

    def eq(self, other: NumberLike) -> "Comparison":
        """Return the equality atom ``self == other``."""
        return Comparison.build(self, other, "=")

    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, Rational]) -> Fraction:
        """Evaluate the expression under a variable assignment."""
        total = self.constant
        for name, coeff in self.coeffs.items():
            total += coeff * to_fraction(assignment[name])
        return total

    def key(self) -> tuple:
        return ("lin", tuple(sorted(self.coeffs.items())), self.constant)

    def __hash__(self) -> int:
        return hash(self.key())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LinearExpr):
            return self.key() == other.key()
        return NotImplemented

    def __repr__(self) -> str:
        parts = [f"{coeff}*{name}" for name, coeff in sorted(self.coeffs.items())]
        if self.constant != 0 or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts)


class Comparison(Expr):
    """A linear arithmetic atom ``polynomial <op> bound``.

    The polynomial has no constant part; the constant is folded into
    ``bound``.  Supported operators are ``<=``, ``<`` and ``=``.
    """

    def __init__(self, poly: LinearExpr, op: str, bound: Fraction) -> None:
        if op not in ("<=", "<", "="):
            raise ValueError(f"unsupported comparison operator {op!r}")
        self.poly = poly
        self.op = op
        self.bound = bound

    @staticmethod
    def build(left: NumberLike, right: NumberLike, op: str) -> "Comparison":
        """Normalize ``left <op> right`` into ``poly <op> bound`` form."""
        left_expr = LinearExpr._coerce(left)
        right_expr = LinearExpr._coerce(right)
        difference = left_expr - right_expr
        bound = -difference.constant
        poly = LinearExpr(difference.coeffs, 0)
        return Comparison(poly, op, bound)

    def key(self) -> tuple:
        return ("cmp", self.poly.key(), self.op, self.bound)

    def __repr__(self) -> str:
        return f"({self.poly!r} {self.op} {self.bound})"


# ----------------------------------------------------------------------
# Constructors mirroring the z3 surface used in the adaptation model
# ----------------------------------------------------------------------
def Bool(name: str) -> BoolVar:
    """Create a Boolean variable."""
    return BoolVar(name)

def Real(name: str) -> LinearExpr:
    """Create a real-valued variable (as a linear expression)."""
    return LinearExpr.variable(name)


def RealVal(value: Rational) -> LinearExpr:
    """Create a real constant."""
    return LinearExpr.constant_expr(value)


def Sum(terms: Iterable[NumberLike]) -> LinearExpr:
    """Sum an iterable of linear expressions / numbers."""
    total = LinearExpr.constant_expr(0)
    for term in terms:
        total = total + term
    return total


def Bools(names: Sequence[str]) -> Tuple[BoolVar, ...]:
    """Create several Boolean variables at once."""
    return tuple(BoolVar(name) for name in names)


def Reals(names: Sequence[str]) -> Tuple[LinearExpr, ...]:
    """Create several real variables at once."""
    return tuple(LinearExpr.variable(name) for name in names)
