"""General simplex procedure for linear real arithmetic (theory solver).

This implements the solver described by Dutertre and de Moura, *A Fast
Linear-Arithmetic Solver for DPLL(T)* (CAV 2006): every asserted atom is a
bound on a variable (original or slack), the tableau keeps basic variables
expressed as linear combinations of non-basic variables, and ``check``
repairs bound violations by pivoting, using Bland's rule for termination.

Strict bounds are handled with delta-rationals (see
:mod:`repro.smt.rational`).  In addition to satisfiability checking the
solver supports maximizing a linear objective over the currently asserted
bounds (primal simplex), which the OMT layer uses to obtain the best
objective value for each Boolean skeleton.

The solver is *backtrackable*: every bound change is recorded on a trail,
and :meth:`Simplex.undo_to` retracts bounds back to an earlier
:meth:`Simplex.mark` without touching the tableau or the assignment.
Following Dutertre-de Moura, rows, slack variables and the current
assignment ``beta`` survive backtracking — ``check`` restores feasibility
from wherever ``beta`` happens to be, so the expensive structures are
built once and warm-started across the DPLL(T) loop's theory checks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.smt.rational import DeltaRational, to_fraction

Reason = Hashable
Conflict = List[Reason]


class Simplex:
    """Incrementally asserted bounds over linear forms, with a feasibility check."""

    def __init__(self) -> None:
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        # Tableau rows: basic variable index -> {non-basic index: coefficient}.
        self._rows: Dict[int, Dict[int, Fraction]] = {}
        self._lower: Dict[int, Tuple[DeltaRational, Reason]] = {}
        self._upper: Dict[int, Tuple[DeltaRational, Reason]] = {}
        self._beta: Dict[int, DeltaRational] = {}
        self._slack_of_poly: Dict[tuple, int] = {}
        # Undo trail: (which bound, variable, previous entry or None).
        self._trail: List[Tuple[str, int, Optional[Tuple[DeltaRational, Reason]]]] = []
        #: Number of pivot operations performed (perf counter).
        self.pivots = 0

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """Return a checkpoint for :meth:`undo_to` (the trail position)."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Retract all bound changes recorded after ``mark``.

        Only the bounds are restored; the tableau, slack variables and the
        assignment are kept, so the next :meth:`check` is warm-started.
        """
        while len(self._trail) > mark:
            kind, var, previous = self._trail.pop()
            bounds = self._lower if kind == "lower" else self._upper
            if previous is None:
                bounds.pop(var, None)
            else:
                bounds[var] = previous

    # ------------------------------------------------------------------
    # Variable and row management
    # ------------------------------------------------------------------
    def variable(self, name: str) -> int:
        """Return the index of problem variable ``name``, creating it if new."""
        if name in self._index:
            return self._index[name]
        index = len(self._names)
        self._names.append(name)
        self._index[name] = index
        self._beta[index] = DeltaRational.of(0)
        return index

    def variable_names(self) -> List[str]:
        """Return the names of all problem variables (slacks included)."""
        return list(self._names)

    def slack_for(self, poly: Mapping[str, Fraction]) -> int:
        """Return a variable constrained to equal ``poly`` (a slack variable).

        Single-variable polynomials with unit coefficient map directly to the
        underlying variable; anything else gets a dedicated slack variable
        whose tableau row encodes the definition.
        """
        items = tuple(sorted((name, to_fraction(coeff)) for name, coeff in poly.items()))
        items = tuple((name, coeff) for name, coeff in items if coeff != 0)
        if len(items) == 1 and items[0][1] == 1:
            return self.variable(items[0][0])
        if items in self._slack_of_poly:
            return self._slack_of_poly[items]
        slack_name = f"__slack{len(self._slack_of_poly)}"
        slack = self.variable(slack_name)
        row: Dict[int, Fraction] = {}
        for name, coeff in items:
            var = self.variable(name)
            self._accumulate_expansion(row, var, coeff)
        row.pop(slack, None)
        self._rows[slack] = row
        self._beta[slack] = self._row_value(row)
        self._slack_of_poly[items] = slack
        return slack

    def _accumulate_expansion(
        self, row: Dict[int, Fraction], var: int, coeff: Fraction
    ) -> None:
        """Add ``coeff * var`` to ``row``, substituting basic variables."""
        if var in self._rows:
            for nonbasic, inner_coeff in self._rows[var].items():
                row[nonbasic] = row.get(nonbasic, Fraction(0)) + coeff * inner_coeff
                if row[nonbasic] == 0:
                    del row[nonbasic]
        else:
            row[var] = row.get(var, Fraction(0)) + coeff
            if row[var] == 0:
                del row[var]

    def _row_value(self, row: Mapping[int, Fraction]) -> DeltaRational:
        total = DeltaRational.of(0)
        for var, coeff in row.items():
            total = total + self._beta[var].scale(coeff)
        return total

    # ------------------------------------------------------------------
    # Bound assertion
    # ------------------------------------------------------------------
    def assert_upper(
        self, var: int, bound: DeltaRational, reason: Reason
    ) -> Optional[Conflict]:
        """Assert ``var <= bound``; return a conflict (list of reasons) or None."""
        current = self._upper.get(var)
        if current is not None and current[0] <= bound:
            return None
        lower = self._lower.get(var)
        if lower is not None and bound < lower[0]:
            return [lower[1], reason]
        self._trail.append(("upper", var, current))
        self._upper[var] = (bound, reason)
        if var not in self._rows and self._beta[var] > bound:
            self._update_nonbasic(var, bound)
        return None

    def assert_lower(
        self, var: int, bound: DeltaRational, reason: Reason
    ) -> Optional[Conflict]:
        """Assert ``var >= bound``; return a conflict (list of reasons) or None."""
        current = self._lower.get(var)
        if current is not None and current[0] >= bound:
            return None
        upper = self._upper.get(var)
        if upper is not None and bound > upper[0]:
            return [upper[1], reason]
        self._trail.append(("lower", var, current))
        self._lower[var] = (bound, reason)
        if var not in self._rows and self._beta[var] < bound:
            self._update_nonbasic(var, bound)
        return None

    def _update_nonbasic(self, var: int, value: DeltaRational) -> None:
        delta = value - self._beta[var]
        self._beta[var] = value
        for basic, row in self._rows.items():
            coeff = row.get(var)
            if coeff:
                self._beta[basic] = self._beta[basic] + delta.scale(coeff)

    # ------------------------------------------------------------------
    # Feasibility check
    # ------------------------------------------------------------------
    def check(self) -> Optional[Conflict]:
        """Restore feasibility; return None if satisfiable, else a conflict."""
        while True:
            violating = self._find_violating_basic()
            if violating is None:
                return None
            basic, needs_increase = violating
            row = self._rows[basic]
            entering = self._find_entering(row, needs_increase)
            if entering is None:
                return self._build_conflict(basic, needs_increase, row)
            target = (
                self._lower[basic][0] if needs_increase else self._upper[basic][0]
            )
            self._pivot_and_update(basic, entering, target)

    def _find_violating_basic(self) -> Optional[Tuple[int, bool]]:
        best: Optional[Tuple[int, bool]] = None
        for basic in sorted(self._rows):
            lower = self._lower.get(basic)
            if lower is not None and self._beta[basic] < lower[0]:
                best = (basic, True)
                break
            upper = self._upper.get(basic)
            if upper is not None and self._beta[basic] > upper[0]:
                best = (basic, False)
                break
        return best

    def _find_entering(self, row: Mapping[int, Fraction], needs_increase: bool) -> Optional[int]:
        for nonbasic in sorted(row):
            coeff = row[nonbasic]
            if needs_increase:
                can_move = (coeff > 0 and self._can_increase(nonbasic)) or (
                    coeff < 0 and self._can_decrease(nonbasic)
                )
            else:
                can_move = (coeff > 0 and self._can_decrease(nonbasic)) or (
                    coeff < 0 and self._can_increase(nonbasic)
                )
            if can_move:
                return nonbasic
        return None

    def _can_increase(self, var: int) -> bool:
        upper = self._upper.get(var)
        return upper is None or self._beta[var] < upper[0]

    def _can_decrease(self, var: int) -> bool:
        lower = self._lower.get(var)
        return lower is None or self._beta[var] > lower[0]

    def _build_conflict(
        self, basic: int, needs_increase: bool, row: Mapping[int, Fraction]
    ) -> Conflict:
        reasons: List[Reason] = []
        if needs_increase:
            reasons.append(self._lower[basic][1])
            for nonbasic, coeff in row.items():
                if coeff > 0:
                    reasons.append(self._upper[nonbasic][1])
                else:
                    reasons.append(self._lower[nonbasic][1])
        else:
            reasons.append(self._upper[basic][1])
            for nonbasic, coeff in row.items():
                if coeff > 0:
                    reasons.append(self._lower[nonbasic][1])
                else:
                    reasons.append(self._upper[nonbasic][1])
        # Filter duplicates while preserving order.
        unique: List[Reason] = []
        for reason in reasons:
            if reason not in unique:
                unique.append(reason)
        return unique

    def _pivot_and_update(self, basic: int, entering: int, target: DeltaRational) -> None:
        row = self._rows[basic]
        coeff = row[entering]
        theta = (target - self._beta[basic]).scale(Fraction(1, 1) / coeff)
        self._beta[basic] = target
        self._beta[entering] = self._beta[entering] + theta
        for other_basic, other_row in self._rows.items():
            if other_basic == basic:
                continue
            other_coeff = other_row.get(entering)
            if other_coeff:
                self._beta[other_basic] = self._beta[other_basic] + theta.scale(other_coeff)
        self._pivot(basic, entering)

    def _pivot(self, basic: int, entering: int) -> None:
        """Swap roles: ``entering`` becomes basic, ``basic`` becomes non-basic."""
        self.pivots += 1
        row = self._rows.pop(basic)
        pivot_coeff = row.pop(entering)
        # entering = (basic - sum(other terms)) / pivot_coeff
        new_row: Dict[int, Fraction] = {basic: Fraction(1) / pivot_coeff}
        for var, coeff in row.items():
            new_row[var] = -coeff / pivot_coeff
        self._rows[entering] = new_row
        for other_basic in list(self._rows):
            if other_basic == entering:
                continue
            other_row = self._rows[other_basic]
            coeff = other_row.pop(entering, None)
            if coeff is None or coeff == 0:
                continue
            for var, entering_coeff in new_row.items():
                updated = other_row.get(var, Fraction(0)) + coeff * entering_coeff
                if updated == 0:
                    other_row.pop(var, None)
                else:
                    other_row[var] = updated

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------
    def maximize(self, poly: Mapping[str, Fraction]) -> Optional[DeltaRational]:
        """Maximize ``poly`` subject to the asserted bounds.

        Must be called on a feasible state (after a successful
        :meth:`check`).  Returns the optimal objective value, or ``None``
        when the objective is unbounded.  The internal assignment is moved
        to the optimum, so :meth:`model` afterwards reflects it.
        """
        objective: Dict[int, Fraction] = {}
        for name, coeff in poly.items():
            var = self.variable(name)
            self._accumulate_expansion(objective, var, to_fraction(coeff))

        max_iterations = 10000
        for _ in range(max_iterations):
            entering, direction = self._find_improving(objective)
            if entering is None:
                return self._objective_value(poly)
            limit, blocking_basic = self._ratio_test(entering, direction)
            if limit is None:
                return None  # unbounded
            if blocking_basic is None:
                # Blocked by the entering variable's own bound.
                bound = (
                    self._upper[entering][0]
                    if direction > 0
                    else self._lower[entering][0]
                )
                self._update_nonbasic(entering, bound)
            else:
                target = self._blocking_target(blocking_basic, entering, direction)
                self._pivot_and_update(blocking_basic, entering, target)
                # Re-express the objective without the (now basic) entering var.
                coeff = objective.pop(entering, Fraction(0))
                if coeff:
                    for var, row_coeff in self._rows[entering].items():
                        objective[var] = objective.get(var, Fraction(0)) + coeff * row_coeff
                        if objective[var] == 0:
                            del objective[var]
        raise RuntimeError("simplex optimization did not converge")

    def _find_improving(
        self, objective: Mapping[int, Fraction]
    ) -> Tuple[Optional[int], int]:
        for var in sorted(objective):
            coeff = objective[var]
            if coeff == 0 or var in self._rows:
                continue
            if coeff > 0 and self._can_increase(var):
                return var, 1
            if coeff < 0 and self._can_decrease(var):
                return var, -1
        return None, 0

    def _ratio_test(
        self, entering: int, direction: int
    ) -> Tuple[Optional[DeltaRational], Optional[int]]:
        """Return (max step, blocking basic var or None); (None, None) if unbounded."""
        best_limit: Optional[DeltaRational] = None
        blocking: Optional[int] = None

        if direction > 0:
            own = self._upper.get(entering)
            if own is not None:
                best_limit = own[0] - self._beta[entering]
        else:
            own = self._lower.get(entering)
            if own is not None:
                best_limit = self._beta[entering] - own[0]

        for basic in sorted(self._rows):
            coeff = self._rows[basic].get(entering)
            if not coeff:
                continue
            rate = coeff * direction  # change of basic per unit step
            if rate > 0:
                upper = self._upper.get(basic)
                if upper is None:
                    continue
                slack = upper[0] - self._beta[basic]
            else:
                lower = self._lower.get(basic)
                if lower is None:
                    continue
                slack = self._beta[basic] - lower[0]
            limit = slack.scale(Fraction(1, 1) / abs(rate))
            if best_limit is None or limit < best_limit:
                best_limit = limit
                blocking = basic
        if best_limit is None:
            return None, None
        return best_limit, blocking

    def _blocking_target(
        self, blocking_basic: int, entering: int, direction: int
    ) -> DeltaRational:
        coeff = self._rows[blocking_basic][entering]
        rate = coeff * direction
        if rate > 0:
            return self._upper[blocking_basic][0]
        return self._lower[blocking_basic][0]

    def _objective_value(self, poly: Mapping[str, Fraction]) -> DeltaRational:
        total = DeltaRational.of(0)
        for name, coeff in poly.items():
            var = self._index[name]
            total = total + self._beta[var].scale(to_fraction(coeff))
        return total

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------
    def model(self) -> Dict[str, Fraction]:
        """Return concrete rational values for all problem variables."""
        delta = self._choose_delta()
        values: Dict[str, Fraction] = {}
        for name, var in self._index.items():
            if name.startswith("__slack"):
                continue
            values[name] = self._beta[var].substitute_delta(delta)
        return values

    def _choose_delta(self) -> Fraction:
        """Pick a concrete positive value for the infinitesimal delta."""
        candidate = Fraction(1)
        for var, beta in self._beta.items():
            for bound_entry, is_lower in (
                (self._lower.get(var), True),
                (self._upper.get(var), False),
            ):
                if bound_entry is None:
                    continue
                bound = bound_entry[0]
                difference = (beta - bound) if is_lower else (bound - beta)
                # difference >= 0 as delta-rational; ensure it stays >= 0
                # after substituting a concrete delta.
                if difference.coeff < 0 and difference.value > 0:
                    candidate = min(candidate, difference.value / (-difference.coeff))
        return candidate / 2
