"""A small satisfiability-modulo-theories (SMT) solver with optimization.

This subpackage provides the reasoning engine used by the quantum circuit
adaptation model of the paper (which originally relied on Z3).  It supports
the quantifier-free fragment the model needs:

* arbitrary propositional structure over Boolean variables and linear real
  arithmetic atoms (Tseitin-encoded into CNF and delegated to
  :class:`repro.sat.Solver`),
* a theory solver for linear real arithmetic implementing the general
  simplex procedure of Dutertre and de Moura with exact
  :class:`fractions.Fraction` arithmetic and delta-rationals for strict
  inequalities,
* optimization modulo theories (OMT) of linear objectives via iterative
  objective strengthening with in-theory simplex optimization per Boolean
  skeleton.

The public facade, :class:`Optimize`, intentionally mirrors the subset of
the ``z3.Optimize`` API used by the paper's model (``add``, ``maximize``,
``minimize``, ``check``, ``model``).

Example
-------
>>> from repro.smt import Bool, Real, Optimize, RealVal
>>> x, y = Real("x"), Real("y")
>>> choose = Bool("choose")
>>> opt = Optimize()
>>> opt.add(x >= RealVal(0), y >= RealVal(0), x + y <= RealVal(10))
>>> opt.add(choose.implies(x >= RealVal(4)))
>>> opt.add(choose)
>>> handle = opt.maximize(y - x)
>>> opt.check()
<CheckResult.SAT: 'sat'>
>>> opt.model()[y]
Fraction(6, 1)
"""

from repro.smt.terms import (
    And,
    Bool,
    BoolVal,
    Expr,
    Iff,
    Implies,
    Ite,
    LinearExpr,
    Not,
    Or,
    Real,
    RealVal,
    Sum,
)
from repro.smt.rational import DeltaRational
from repro.smt.solver import CheckResult, Model, SmtSolver
from repro.smt.optimize import Optimize, ObjectiveHandle

__all__ = [
    "And",
    "Bool",
    "BoolVal",
    "Expr",
    "Iff",
    "Implies",
    "Ite",
    "LinearExpr",
    "Not",
    "Or",
    "Real",
    "RealVal",
    "Sum",
    "DeltaRational",
    "CheckResult",
    "Model",
    "SmtSolver",
    "Optimize",
    "ObjectiveHandle",
]
