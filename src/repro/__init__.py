"""SAT/SMT-based adaptation of quantum circuits to spin-qubit hardware.

A reproduction of Brandhofer, Kruppa, Neumann and Becker (DATE 2023):
quantum circuits written in a superconducting-style basis (CNOT / CZ /
SWAP + SU(2)) are adapted to the native gate set of a semiconducting
spin-qubit device by globally selecting substitution rules through an
optimizing SMT solver, trading off circuit fidelity (Eq. 8), qubit idle
time (Eq. 9) or both (Eq. 10).

The single front door is :func:`repro.compile`::

    import repro

    circuit = repro.QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.swap(1, 2)

    target = repro.spin_qubit_target(3, "D0")
    result = repro.compile(circuit, target, technique="sat_p")
    print(result.cost.gate_fidelity_product, result.report.summary())

Batch workloads go through :func:`repro.compile_many`; new techniques
plug in with :func:`repro.register_technique`.  The layers underneath:

* :mod:`repro.server` — the networked compilation gateway: HTTP JSON
  API, :class:`ReproClient`, multi-process sharding and the
  ``python -m repro.server`` serving CLI;
* :mod:`repro.service` — persistent result store, async job scheduler,
  portfolio compilation and the ``python -m repro.service`` batch CLI;
* :mod:`repro.interop` — OpenQASM 2.0 frontend/exporter and the bundled
  benchmark suite (``repro.compile`` accepts QASM strings and ``.qasm``
  paths directly);
* :mod:`repro.trace` — opt-in structured event tracing across all of the
  above (``REPRO_TRACE`` / ``compile(trace=...)``; inspect with
  ``python -m repro.trace``);
* :mod:`repro.resilience` — compile deadlines and cooperative
  cancellation (``compile(timeout=...)``), degradation ladders and
  deterministic fault injection (``REPRO_FAULTS``);
* :mod:`repro.golden` — the solution-quality regression harness:
  golden baselines per benchmark × technique with tolerances, CI
  gating and deliberate rebaselining (``python -m repro.golden``);
* :mod:`repro.api` — facade, technique registry, compilation cache;
* :mod:`repro.pipeline` — the instrumented pass pipeline (Fig. 2);
* :mod:`repro.core` — preprocessing, substitution rules, the SMT model;
* :mod:`repro.smt` / :mod:`repro.sat` — the pure-Python OMT solver stack;
* :mod:`repro.hardware`, :mod:`repro.circuits`, :mod:`repro.transpiler`,
  :mod:`repro.synthesis`, :mod:`repro.simulator`, :mod:`repro.workloads`.

Top-level names are imported lazily, so ``import repro`` stays cheap.
"""

from typing import TYPE_CHECKING

__version__ = "0.2.0"

#: Lazily resolved top-level exports: name -> (module, attribute).
_LAZY_EXPORTS = {
    "compile": ("repro.api", "compile"),
    "compile_many": ("repro.api", "compile_many"),
    "register_technique": ("repro.api", "register_technique"),
    "available_techniques": ("repro.api", "available_techniques"),
    "clear_compilation_cache": ("repro.api", "clear_compilation_cache"),
    "compilation_cache_info": ("repro.api", "compilation_cache_info"),
    "UnknownTechniqueError": ("repro.api", "UnknownTechniqueError"),
    "PAPER_TECHNIQUES": ("repro.api", "PAPER_TECHNIQUES"),
    "Pipeline": ("repro.pipeline", "Pipeline"),
    "CompilationReport": ("repro.pipeline", "CompilationReport"),
    "AdaptationResult": ("repro.core", "AdaptationResult"),
    "QuantumCircuit": ("repro.circuits", "QuantumCircuit"),
    "spin_qubit_target": ("repro.hardware", "spin_qubit_target"),
    "evaluation_suite": ("repro.workloads", "evaluation_suite"),
    "circuit_from_qasm": ("repro.interop", "circuit_from_qasm"),
    "circuit_to_qasm": ("repro.interop", "circuit_to_qasm"),
    "load_qasm_file": ("repro.interop", "load_qasm_file"),
    "load_suite": ("repro.interop", "load_suite"),
    "suite_names": ("repro.interop", "suite_names"),
    "QasmError": ("repro.interop", "QasmError"),
    "CompilationService": ("repro.service", "CompilationService"),
    "PersistentResultStore": ("repro.service", "PersistentResultStore"),
    "use_persistent_store": ("repro.service", "use_persistent_store"),
    "disable_persistent_store": ("repro.service", "disable_persistent_store"),
    "ReproClient": ("repro.server", "ReproClient"),
    "build_server": ("repro.server", "build_server"),
    "ShardRouter": ("repro.server", "ShardRouter"),
    "start_tracing": ("repro.trace", "start_tracing"),
    "stop_tracing": ("repro.trace", "stop_tracing"),
    "Tracer": ("repro.trace", "Tracer"),
    "Budget": ("repro.resilience", "Budget"),
    "CompileInterrupted": ("repro.resilience", "CompileInterrupted"),
    "CompileDeadlineExceeded": ("repro.resilience", "CompileDeadlineExceeded"),
    "CompileCancelled": ("repro.resilience", "CompileCancelled"),
    "QualityRecord": ("repro.golden", "QualityRecord"),
    "GoldenBaseline": ("repro.golden", "GoldenBaseline"),
    "extract_quality": ("repro.golden", "extract_quality"),
    "run_golden": ("repro.golden", "run_golden"),
    "quality_summary": ("repro.golden", "quality_summary"),
}

__all__ = ["__version__"] + sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    """PEP 562 lazy attribute access for the top-level exports."""
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static typing aid only
    from repro.api import (
        PAPER_TECHNIQUES,
        UnknownTechniqueError,
        available_techniques,
        clear_compilation_cache,
        compilation_cache_info,
        compile,
        compile_many,
        register_technique,
    )
    from repro.circuits import QuantumCircuit
    from repro.core import AdaptationResult
    from repro.hardware import spin_qubit_target
    from repro.interop import (
        QasmError,
        circuit_from_qasm,
        circuit_to_qasm,
        load_qasm_file,
        load_suite,
        suite_names,
    )
    from repro.pipeline import CompilationReport, Pipeline
    from repro.resilience import (
        Budget,
        CompileCancelled,
        CompileDeadlineExceeded,
        CompileInterrupted,
    )
    from repro.server import ReproClient, ShardRouter, build_server
    from repro.service import (
        CompilationService,
        PersistentResultStore,
        disable_persistent_store,
        use_persistent_store,
    )
    from repro.trace import Tracer, start_tracing, stop_tracing
    from repro.workloads import evaluation_suite
