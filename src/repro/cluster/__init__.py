"""repro.cluster — multi-node serving building blocks.

Four orthogonal pieces the HTTP layer composes into a cluster:

* :mod:`repro.cluster.backends` — the pluggable persistent-store
  surface (:class:`StoreBackend`), the HTTP peer-fetch
  :class:`ReplicatedStoreBackend`, and the ``dir:``/``replicated:``
  spec parser :func:`resolve_store_backend`.
* :mod:`repro.cluster.auth` — API keys with token-bucket rate limits,
  daily quotas and expiry (:class:`Authenticator`, :class:`ApiKey`).
* :mod:`repro.cluster.events` — the job-event broker behind
  ``GET /v1/jobs/{id}/events`` (:class:`JobEventBroker`).
* :mod:`repro.cluster.shedding` — priority-aware admission control
  tied to scheduler saturation (:class:`LoadShedder`).
"""

from repro.cluster.auth import (
    ApiKey,
    AuthError,
    Authenticator,
    ExpiredKeyError,
    InvalidKeyError,
    MissingKeyError,
    QuotaExceededError,
    RateLimitedError,
    TokenBucket,
    credential_from_headers,
)
from repro.cluster.backends import (
    PEERS_FILE,
    ReplicatedStoreBackend,
    StoreBackend,
    resolve_store_backend,
    write_peers_file,
)
from repro.cluster.events import TERMINAL_EVENTS, JobEventBroker
from repro.cluster.shedding import LoadShedder, ShedError, SheddingPolicy

__all__ = [
    "ApiKey",
    "AuthError",
    "Authenticator",
    "ExpiredKeyError",
    "InvalidKeyError",
    "JobEventBroker",
    "LoadShedder",
    "MissingKeyError",
    "PEERS_FILE",
    "QuotaExceededError",
    "RateLimitedError",
    "ReplicatedStoreBackend",
    "ShedError",
    "SheddingPolicy",
    "StoreBackend",
    "TERMINAL_EVENTS",
    "TokenBucket",
    "credential_from_headers",
    "resolve_store_backend",
    "write_peers_file",
]
