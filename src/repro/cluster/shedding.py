"""Priority-aware load shedding tied to scheduler saturation.

When the compilation queue fills, the service already protects itself
with :class:`repro.service.ServiceSaturatedError` — but that rejects
whoever arrives last, regardless of who they are.  The shedder rejects
*earlier* and *selectively*: as saturation rises past ``threshold``, a
priority cutoff climbs linearly until at ``full`` only the highest
priority class (:data:`~repro.cluster.auth.MAX_PRIORITY`) is admitted.
Lowest-priority keys are shed first, and every refusal carries a
``Retry-After`` hint scaled to how saturated the service is.

The shedder is advisory and stateless between calls — it reads
:meth:`repro.service.CompilationService.saturation` at each admission
so it needs no feedback loop of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.auth import MAX_PRIORITY, ApiKey
from repro.telemetry.instruments import record_shed

__all__ = ["LoadShedder", "SheddingPolicy", "ShedError"]


class ShedError(Exception):
    """A submission refused by the shedder (HTTP 503 + Retry-After)."""

    status = 503

    def __init__(self, message: str, retry_after: float,
                 key_name: str = "anonymous") -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.key_name = key_name


@dataclass(frozen=True)
class SheddingPolicy:
    """The admission curve.

    Below ``threshold`` saturation everyone is admitted.  Between
    ``threshold`` and ``full`` the minimum admitted priority rises
    linearly from 0 to :data:`MAX_PRIORITY`; at or above ``full`` only
    ``MAX_PRIORITY`` keys get through.  Anonymous traffic (no auth
    configured) is treated as ``anonymous_priority``.
    """

    threshold: float = 0.75
    full: float = 0.95
    anonymous_priority: int = 5
    retry_after_floor: float = 0.5
    retry_after_ceiling: float = 15.0

    def cutoff(self, saturation: float) -> int:
        """Minimum priority admitted at ``saturation`` (0 = admit all)."""
        if saturation < self.threshold:
            return 0
        if saturation >= self.full:
            return MAX_PRIORITY
        span = max(self.full - self.threshold, 1e-9)
        fraction = (saturation - self.threshold) / span
        return min(MAX_PRIORITY, int(fraction * MAX_PRIORITY) + 1)

    def retry_after(self, saturation: float) -> float:
        """Backoff hint: deeper saturation asks clients to wait longer."""
        scale = min(max(saturation, 0.0), 1.0)
        return min(self.retry_after_ceiling,
                   self.retry_after_floor
                   + scale * (self.retry_after_ceiling
                              - self.retry_after_floor))


class LoadShedder:
    """Admission gate in front of job submission."""

    def __init__(self, saturation_fn,
                 policy: Optional[SheddingPolicy] = None) -> None:
        self._saturation_fn = saturation_fn
        self.policy = policy or SheddingPolicy()

    def admit(self, key: Optional[ApiKey]) -> None:
        """Admit or shed one submission for ``key`` (``None`` = anonymous).

        Raises :class:`ShedError` when the key's priority falls below
        the current cutoff.
        """
        saturation = self._saturation_fn()
        cutoff = self.policy.cutoff(saturation)
        if cutoff <= 0:
            return
        priority = (key.priority if key is not None
                    else self.policy.anonymous_priority)
        if priority >= cutoff:
            return
        name = key.name if key is not None else "anonymous"
        record_shed(name)
        raise ShedError(
            f"service is saturated ({saturation:.0%}); shedding priority "
            f"< {cutoff} (key '{name}' has priority {priority})",
            retry_after=self.policy.retry_after(saturation),
            key_name=name,
        )

    def snapshot(self) -> dict:
        """Current saturation and cutoff (for /metrics)."""
        saturation = self._saturation_fn()
        return {
            "saturation": saturation,
            "priority_cutoff": self.policy.cutoff(saturation),
            "threshold": self.policy.threshold,
            "full": self.policy.full,
        }
