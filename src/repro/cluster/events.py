"""In-process job-event broker feeding server-sent event streams.

The scheduler publishes lifecycle transitions through its listener hook
(:meth:`repro.service.CompilationService.add_listener`); the broker
fans them out to any number of concurrent subscribers per job, each of
which is one ``GET /v1/jobs/{id}/events`` handler thread running
:meth:`JobEventBroker.stream`.

Design points:

* **Replay-before-wait** — every channel keeps its full (bounded) event
  history, and a subscriber first replays it.  This closes the race
  where a job finishes between the submit response and the client
  opening its stream: the terminal event is in history and the stream
  ends immediately.
* **Channel keys are opaque tuples** — the gateway uses
  ``("svc", service_job_id)`` for technique jobs (so gateway jobs
  coalesced onto one service job share a channel) and
  ``("gw", gateway_job_id)`` for portfolio jobs it publishes itself.
* **Heartbeats** — an idle wait yields a synthetic ``heartbeat`` event
  at ``heartbeat_seconds`` intervals so proxies and clients can tell a
  quiet stream from a dead one.
* **Bounded memory** — terminal channels beyond ``max_channels`` are
  evicted oldest-first; per-channel history is capped at
  ``max_history`` events.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["JobEvent", "JobEventBroker", "TERMINAL_EVENTS"]

#: Events that end a job's stream (and allow channel eviction).
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})

#: A published event: (sequence, event name, payload dict).
JobEvent = Tuple[int, str, Dict[str, object]]


class _Channel:
    """One job's event history and terminal flag (under the broker lock)."""

    __slots__ = ("events", "terminal", "created")

    def __init__(self, created: float) -> None:
        self.events: List[JobEvent] = []
        self.terminal = False
        self.created = created


class JobEventBroker:
    """Publish/subscribe fan-out for job lifecycle events.

    One global condition serializes publication and wakes every waiting
    stream; streams filter by channel key themselves.  That favors
    simplicity over per-channel wakeups — lifecycle events are rare
    (a handful per job) next to the cost of a compile.
    """

    def __init__(self, max_channels: int = 4096,
                 max_history: int = 256) -> None:
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._channels: "OrderedDict[tuple, _Channel]" = OrderedDict()
        self._sequence = itertools.count(1)
        self.max_channels = max_channels
        self.max_history = max_history

    # -- publishing ------------------------------------------------------
    def publish(self, channel: tuple, event: str,
                payload: Optional[Dict[str, object]] = None) -> None:
        """Append ``event`` to ``channel`` and wake every subscriber."""
        with self._wakeup:
            entry = self._channels.get(channel)
            if entry is None:
                entry = _Channel(created=time.monotonic())
                self._channels[channel] = entry
                self._evict_terminal_locked()
            if entry.terminal:
                return  # Nothing may follow a terminal event.
            if len(entry.events) >= self.max_history:
                # Keep the tail: late events (including the terminal one)
                # matter more than early queue churn.
                del entry.events[0:len(entry.events) - self.max_history + 1]
            entry.events.append(
                (next(self._sequence), event, dict(payload or {})))
            if event in TERMINAL_EVENTS:
                entry.terminal = True
            self._wakeup.notify_all()

    def _evict_terminal_locked(self) -> None:
        if len(self._channels) <= self.max_channels:
            return
        for key in [k for k, c in self._channels.items() if c.terminal]:
            del self._channels[key]
            if len(self._channels) <= self.max_channels:
                return
        # Still over budget: drop the oldest channels outright (bounded
        # memory beats completeness for streams nobody is reading).
        while len(self._channels) > self.max_channels:
            self._channels.popitem(last=False)

    # -- subscribing -----------------------------------------------------
    def stream(
        self,
        channel: tuple,
        heartbeat_seconds: float = 15.0,
        poll_seconds: float = 1.0,
        is_alive=None,
        timeout: Optional[float] = None,
    ) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Yield ``(event, payload)`` pairs for ``channel`` until terminal.

        Replays history first, then waits for new events.  Idle gaps
        yield ``("heartbeat", {...})`` every ``heartbeat_seconds``.
        ``is_alive`` (a nullary callable) is polled between waits — the
        SSE handler passes a connection probe so an abandoned stream
        releases its thread within ``poll_seconds``.  ``timeout`` bounds
        the whole stream (a final ``("timeout", ...)`` is yielded).
        """
        last_seen = 0
        started = time.monotonic()
        last_emit = started
        while True:
            batch: List[JobEvent] = []
            terminal = False
            with self._wakeup:
                entry = self._channels.get(channel)
                if entry is not None:
                    batch = [e for e in entry.events if e[0] > last_seen]
                    terminal = entry.terminal
                if not batch and not terminal:
                    self._wakeup.wait(poll_seconds)
                    entry = self._channels.get(channel)
                    if entry is not None:
                        batch = [e for e in entry.events if e[0] > last_seen]
                        terminal = entry.terminal
            for sequence, event, payload in batch:
                last_seen = sequence
                last_emit = time.monotonic()
                yield event, payload
            if terminal:
                return
            now = time.monotonic()
            if timeout is not None and now - started >= timeout:
                yield "timeout", {"elapsed_seconds": now - started}
                return
            if is_alive is not None and not is_alive():
                return
            if now - last_emit >= heartbeat_seconds:
                last_emit = now
                yield "heartbeat", {"elapsed_seconds": now - started}

    # -- introspection ---------------------------------------------------
    def history(self, channel: tuple) -> List[Tuple[str, Dict[str, object]]]:
        """The channel's recorded ``(event, payload)`` pairs so far."""
        with self._lock:
            entry = self._channels.get(channel)
            if entry is None:
                return []
            return [(event, dict(payload))
                    for _, event, payload in entry.events]

    def channels(self) -> int:
        with self._lock:
            return len(self._channels)

    def forget(self, channel: tuple) -> None:
        """Drop a channel outright (gateway job eviction hook)."""
        with self._lock:
            self._channels.pop(channel, None)
