"""Pluggable persistent-store backends for multi-node serving.

The L2 result tier behind :func:`repro.compile` is duck-typed (see
:func:`repro.api.cache.install_persistent_store`); this module names the
contract explicitly and adds the first distributed implementation:

* :class:`StoreBackend` — the abstract surface every backend speaks:
  keyed ``get``/``put`` (deserialized :class:`AdaptationResult`), raw
  entry transport ``read_raw``/``write_raw`` (the exact on-disk JSON
  document, which is what travels between nodes), ``info``/
  ``statistics`` and a ``backend`` label for telemetry.
* :class:`repro.service.PersistentResultStore` — the **local-dir**
  backend (registered as a virtual subclass; it predates this module and
  stays where the service layer can import it without a cycle).
* :class:`ReplicatedStoreBackend` — the **peer-fetch** backend: each
  node owns a private local-dir tier and, on a local miss, asks its
  peers' ``GET /internal/store/{digest}`` endpoints for the entry.  A
  peer hit is adopted into the local tier (so the next lookup is local)
  and counted as a ``peer_hit`` — the "warm cross-shard L2 hit" the
  scaling benchmarks measure.

Peers are either a static URL list or a *peers file* (JSON written by
:class:`repro.server.ShardRouter` after every shard has booted, since
shard ports are assigned dynamically).  The file is re-read lazily when
its mtime changes, so respawned shards show up without restarts.

:func:`resolve_store_backend` turns the CLI/config spec strings into
backends::

    dir:/path/to/store              local-dir (a bare path means the same)
    replicated:/path?peers=URL,URL  peer-fetch with static peers
    replicated:/path                peer-fetch; peers from peers.json
"""

from __future__ import annotations

import abc
import json
import os
import threading
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.api.cache import CacheKey
from repro.core.adapter import AdaptationResult
from repro.service.store import (
    DEFAULT_MAX_BYTES,
    PersistentResultStore,
    StoreInfo,
    _entry_digest,
)
from repro.telemetry.instruments import record_peer_fetch
from repro.trace.tracer import current_tracer

#: Name of the dynamic peer-discovery file a router writes at the store
#: root once every shard's port is known.
PEERS_FILE = "peers.json"

#: Environment variable naming this process's node in the peers file
#: (set by the shard router for its worker processes).
NODE_ENV = "REPRO_CLUSTER_NODE"

#: Per-peer HTTP timeout: a slow peer must never stall a compile longer
#: than recomputing a small circuit would take.
DEFAULT_PEER_TIMEOUT = 2.0


class StoreBackend(abc.ABC):
    """The surface every persistent-store backend implements.

    ``get``/``put`` speak deserialized results (the cache protocol
    :func:`repro.compile` consults); ``read_raw``/``write_raw`` speak the
    verbatim entry document (the replication wire format).  Backends are
    duck-typed at every call site — this ABC exists so new backends have
    a checklist and ``isinstance`` checks keep working via virtual
    registration.
    """

    #: Telemetry label distinguishing backends in statistics and metrics.
    backend = "abstract"

    @abc.abstractmethod
    def get(self, key: Optional[CacheKey]) -> Optional[AdaptationResult]:
        """Deserialized entry for ``key``, or ``None`` on a miss."""

    @abc.abstractmethod
    def put(self, key: Optional[CacheKey], result: AdaptationResult) -> None:
        """Persist ``result`` under ``key``."""

    @abc.abstractmethod
    def read_raw(self, digest: str) -> Optional[str]:
        """Verbatim entry document for a sha256 digest, or ``None``."""

    @abc.abstractmethod
    def write_raw(self, digest: str, document: str) -> bool:
        """Adopt a verbatim entry document; ``True`` when stored."""

    @abc.abstractmethod
    def info(self) -> StoreInfo:
        """Counters and footprint of the backend's local tier."""

    @abc.abstractmethod
    def statistics(self) -> Dict[str, object]:
        """JSON-ready statistics including the ``backend`` label."""


# The local-dir store predates this interface and lives below the
# service layer; it conforms structurally and registers virtually.
StoreBackend.register(PersistentResultStore)


class ReplicatedStoreBackend:
    """A local-dir tier with HTTP peer fetch on miss.

    Parameters
    ----------
    root:
        The *cluster* store root.  With a ``node`` name the local tier
        lives in ``root/node`` (each node private); without one it lives
        in ``root`` directly.
    node:
        This node's name in the peers file (e.g. ``"s0"``); defaults to
        the ``REPRO_CLUSTER_NODE`` environment variable.  Fetches skip
        the entry naming this node.
    peers:
        Static peer base URLs.  When ``None``, peers come from
        ``root/peers.json`` (re-read when its mtime changes).
    peer_timeout:
        Per-peer HTTP timeout in seconds.
    max_bytes:
        Size budget of the local tier.
    """

    backend = "replicated"

    def __init__(
        self,
        root: str,
        node: Optional[str] = None,
        peers: Optional[List[str]] = None,
        peer_timeout: float = DEFAULT_PEER_TIMEOUT,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.root = os.path.abspath(root)
        self.node = node if node is not None else os.environ.get(NODE_ENV)
        local_root = (os.path.join(self.root, self.node)
                      if self.node else self.root)
        self.local = PersistentResultStore(local_root, max_bytes=max_bytes)
        self.peer_timeout = peer_timeout
        self._static_peers = ([url.rstrip("/") for url in peers]
                              if peers is not None else None)
        self._peers_path = os.path.join(self.root, PEERS_FILE)
        self._peers_mtime: Optional[float] = None
        self._peers_cache: List[str] = []
        self._lock = threading.Lock()
        self._peer_hits = 0
        self._peer_misses = 0
        self._peer_errors = 0

    # -- peer discovery --------------------------------------------------
    def peers(self) -> List[str]:
        """Current peer base URLs (own node excluded)."""
        if self._static_peers is not None:
            return list(self._static_peers)
        try:
            mtime = os.stat(self._peers_path).st_mtime
        except OSError:
            return []
        with self._lock:
            if mtime != self._peers_mtime:
                self._peers_cache = self._load_peers_file()
                self._peers_mtime = mtime
            return list(self._peers_cache)

    def _load_peers_file(self) -> List[str]:
        try:
            with open(self._peers_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return []
        entries = payload.get("peers") if isinstance(payload, dict) else None
        if not isinstance(entries, dict):
            return []
        return [str(url).rstrip("/") for name, url in sorted(entries.items())
                if name != self.node]

    # -- the cache protocol ----------------------------------------------
    def get(self, key: Optional[CacheKey]) -> Optional[AdaptationResult]:
        """Local tier first; on a miss, ask every peer for the entry."""
        if key is None:
            return None
        result = self.local.get(key)
        if result is not None:
            return result
        digest = _entry_digest(key)
        document = self._fetch_from_peers(digest)
        if document is None:
            return None
        try:
            result = AdaptationResult.from_dict(json.loads(document)["result"])
        except (ValueError, KeyError, TypeError):
            # A peer served garbage; treat as a miss and do not adopt it.
            self._count(errors=1)
            record_peer_fetch(self.backend, "error")
            return None
        # Adopt the entry so the next lookup is local (and so this node
        # can in turn serve it to other peers).
        self.local.write_raw(digest, document)
        self._count(hits=1)
        record_peer_fetch(self.backend, "hit")
        current_tracer().event("store.peer_hit", "service", digest=digest,
                               bytes=len(document))
        return result

    def put(self, key: Optional[CacheKey], result: AdaptationResult) -> None:
        self.local.put(key, result)

    # -- raw entry transport ---------------------------------------------
    def read_raw(self, digest: str) -> Optional[str]:
        """Serve *local* entries only: peers never fetch transitively."""
        return self.local.read_raw(digest)

    def write_raw(self, digest: str, document: str) -> bool:
        return self.local.write_raw(digest, document)

    def _fetch_from_peers(self, digest: str) -> Optional[str]:
        peers = self.peers()
        if not peers:
            self._count(misses=1)
            return None
        for peer in peers:
            url = f"{peer}/internal/store/{digest}"
            try:
                request = urllib.request.Request(
                    url, headers={"Accept": "application/json"})
                with urllib.request.urlopen(
                        request, timeout=self.peer_timeout) as response:
                    return response.read().decode("utf-8")
            except urllib.error.HTTPError as error:
                error.close()
                if error.code != 404:
                    self._count(errors=1)
                    record_peer_fetch(self.backend, "error")
            except (urllib.error.URLError, OSError, ValueError):
                self._count(errors=1)
                record_peer_fetch(self.backend, "error")
        self._count(misses=1)
        record_peer_fetch(self.backend, "miss")
        return None

    # -- statistics ------------------------------------------------------
    def _count(self, hits: int = 0, misses: int = 0, errors: int = 0) -> None:
        with self._lock:
            self._peer_hits += hits
            self._peer_misses += misses
            self._peer_errors += errors

    def info(self) -> StoreInfo:
        """The local tier's counters/footprint (peer counters are extra)."""
        return self.local.info()

    def statistics(self) -> Dict[str, object]:
        stats: Dict[str, object] = dict(self.local.info().as_dict())
        peer_count = len(self.peers())  # Takes the lock; stay outside it.
        with self._lock:
            stats.update(
                backend=self.backend,
                node=self.node,
                peers=peer_count,
                peer_hits=self._peer_hits,
                peer_misses=self._peer_misses,
                peer_errors=self._peer_errors,
            )
        return stats

    def clear(self) -> int:
        return self.local.clear()

    def __repr__(self) -> str:
        return (f"ReplicatedStoreBackend(root={self.root!r}, "
                f"node={self.node!r}, peers={len(self.peers())})")


StoreBackend.register(ReplicatedStoreBackend)


def write_peers_file(root: str, peers: Dict[str, str]) -> str:
    """Atomically publish the node-name -> base-URL map at ``root``.

    The shard router calls this once every shard announced its port (and
    again after a respawn).  Returns the file path.
    """
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, PEERS_FILE)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump({"peers": dict(peers)}, handle, sort_keys=True)
    os.replace(tmp_path, path)
    return path


def _parse_spec(spec: str) -> Tuple[str, str, Dict[str, List[str]]]:
    """Split ``scheme:path?query`` → (scheme, path, query dict)."""
    scheme, separator, rest = spec.partition(":")
    if scheme in ("dir", "replicated") and separator:
        path, _, query = rest.partition("?")
        return scheme, path, parse_qs(query)
    return "dir", spec, {}


def resolve_store_backend(spec, node: Optional[str] = None):
    """Turn a store spec into a backend instance.

    ``None`` stays ``None``; an object with ``get``/``put`` passes
    through; a string is parsed: ``dir:PATH`` (or a bare path) builds the
    local-dir backend, ``replicated:PATH[?peers=URL,URL][&timeout=S]``
    the peer-fetch backend.  ``node`` names this process in the peers
    file (defaults to ``$REPRO_CLUSTER_NODE``).
    """
    if spec is None:
        return None
    if hasattr(spec, "get") and hasattr(spec, "put") and not isinstance(spec, str):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"cannot resolve a store backend from {type(spec).__name__}")
    scheme, path, query = _parse_spec(spec)
    if not path:
        raise ValueError(f"store spec {spec!r} names no directory")
    if scheme == "dir":
        return PersistentResultStore(path)
    peers: Optional[List[str]] = None
    if "peers" in query:
        peers = [url for raw in query["peers"]
                 for url in raw.split(",") if url]
    timeout = DEFAULT_PEER_TIMEOUT
    if "timeout" in query:
        try:
            timeout = float(query["timeout"][0])
        except (ValueError, IndexError):
            raise ValueError(
                f"invalid peer timeout in store spec {spec!r}") from None
    return ReplicatedStoreBackend(path, node=node, peers=peers,
                                  peer_timeout=timeout)
