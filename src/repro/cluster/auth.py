"""API-key authentication, token-bucket rate limits and daily quotas.

Keys are static bearer secrets (the DocuSenseLM-style service-hardening
shape): each maps to a named principal with a priority class, a
steady-state request rate with burst headroom, and an optional daily
quota.  Configuration come from a JSON file, an inline JSON string, the
``REPRO_API_KEYS`` environment variable, or a plain dict::

    {"keys": [
        {"key": "sk-alpha", "name": "alpha", "priority": 8,
         "rate": 50, "burst": 100, "daily_quota": 100000},
        {"key": "sk-trial", "name": "trial", "priority": 1,
         "rate": 2, "burst": 4, "expires": "2026-12-31"}
    ]}

Enforcement is split so a request pays each limit exactly once in a
sharded deployment: the **edge** (router, or a standalone gateway)
charges token buckets and quotas; gateways behind a router run with
``enforce_limits=False`` and only re-check key validity.  Outcomes map
onto HTTP statuses via typed errors — 401 missing/unknown key, 403
expired key, 429 over-rate or over-quota with ``retry_after`` — and
every decision lands on the keyed ``repro_auth_requests_total`` metric.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.instruments import record_auth

__all__ = [
    "ApiKey",
    "AuthError",
    "Authenticator",
    "ExpiredKeyError",
    "InvalidKeyError",
    "MissingKeyError",
    "QuotaExceededError",
    "RateLimitedError",
    "TokenBucket",
]

#: Environment variable holding inline key JSON (or a file path).
KEYS_ENV = "REPRO_API_KEYS"

#: Highest priority class; higher survives load shedding longer.
MAX_PRIORITY = 9

_SECONDS_PER_DAY = 86400.0


class AuthError(Exception):
    """Base of every authentication/admission failure.

    ``status`` is the HTTP status the gateway maps this to;
    ``retry_after`` (seconds, or ``None``) feeds the ``Retry-After``
    header; ``outcome`` is the metric label.
    """

    status = 401
    outcome = "invalid"

    def __init__(self, message: str, retry_after: Optional[float] = None,
                 key_name: str = "anonymous") -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.key_name = key_name


class MissingKeyError(AuthError):
    """No credential on the request at all."""

    status = 401
    outcome = "missing"


class InvalidKeyError(AuthError):
    """A credential was presented but matches no configured key."""

    status = 401
    outcome = "invalid"


class ExpiredKeyError(AuthError):
    """The key exists but its expiry date has passed."""

    status = 403
    outcome = "expired"


class RateLimitedError(AuthError):
    """The key's token bucket is empty; retry after it refills."""

    status = 429
    outcome = "throttled"


class QuotaExceededError(AuthError):
    """The key's daily quota is exhausted until the UTC day rolls over."""

    status = 429
    outcome = "quota"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``take()`` is thread-safe and never blocks — it either debits one
    token or reports how long until one is available.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self._tokens = self.burst
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def take(self, now: Optional[float] = None) -> Optional[float]:
        """Debit one token; ``None`` on success, else seconds to wait."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            elapsed = max(0.0, now - self._stamp)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


@dataclass
class ApiKey:
    """One configured principal and its admission parameters."""

    #: The bearer secret clients present.
    secret: str
    #: Human-readable principal name (the metric label — never the secret).
    name: str
    #: Shedding priority class, 0..9; *higher* keys are shed last.
    priority: int = 5
    #: Steady-state requests/second (token-bucket refill rate).
    rate: float = 10.0
    #: Burst capacity on top of the steady rate.
    burst: float = 20.0
    #: Requests per UTC day, or ``None`` for unmetered.
    daily_quota: Optional[int] = None
    #: Unix expiry timestamp, or ``None`` for a non-expiring key.
    expires_at: Optional[float] = None

    _bucket: TokenBucket = field(init=False, repr=False)
    _quota_day: int = field(init=False, default=-1, repr=False)
    _quota_used: int = field(init=False, default=0, repr=False)
    _quota_lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.priority = max(0, min(MAX_PRIORITY, int(self.priority)))
        self._bucket = TokenBucket(self.rate, self.burst)
        self._quota_lock = threading.Lock()

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ApiKey":
        """Build a key from one config entry (see the module docstring).

        ``expires`` accepts a unix timestamp or an ISO ``YYYY-MM-DD``
        date (expiring at the *end* of that UTC day).
        """
        secret = str(payload.get("key") or payload.get("secret") or "")
        if not secret:
            raise ValueError("API key entry is missing its 'key' secret")
        expires_at: Optional[float] = None
        raw_expires = payload.get("expires")
        if raw_expires is not None:
            expires_at = _parse_expiry(raw_expires)
        quota = payload.get("daily_quota")
        rate = float(payload.get("rate", 10.0))
        return cls(
            secret=secret,
            name=str(payload.get("name") or f"key-{secret[-4:]}"),
            priority=int(payload.get("priority", 5)),
            rate=rate,
            burst=float(payload.get("burst", 2 * rate)),
            daily_quota=int(quota) if quota is not None else None,
            expires_at=expires_at,
        )

    def expired(self, now: Optional[float] = None) -> bool:
        if self.expires_at is None:
            return False
        return (now if now is not None else time.time()) >= self.expires_at

    def charge(self, now: Optional[float] = None) -> None:
        """Debit one request from the bucket and the daily quota.

        Raises :class:`RateLimitedError` or :class:`QuotaExceededError`;
        on success both limits were charged (quota first, so a throttled
        request does not burn quota).
        """
        wall = time.time()
        if self.daily_quota is not None:
            day = int(wall // _SECONDS_PER_DAY)
            with self._quota_lock:
                if day != self._quota_day:
                    self._quota_day = day
                    self._quota_used = 0
                if self._quota_used >= self.daily_quota:
                    until_midnight = (day + 1) * _SECONDS_PER_DAY - wall
                    raise QuotaExceededError(
                        f"daily quota of {self.daily_quota} requests "
                        f"exhausted for key '{self.name}'",
                        retry_after=max(1.0, until_midnight),
                        key_name=self.name,
                    )
                self._quota_used += 1
        wait = self._bucket.take(now)
        if wait is not None:
            if self.daily_quota is not None:
                with self._quota_lock:
                    self._quota_used -= 1
            raise RateLimitedError(
                f"rate limit of {self.rate:g} req/s exceeded for key "
                f"'{self.name}'",
                retry_after=max(wait, 0.05),
                key_name=self.name,
            )

    def quota_remaining(self) -> Optional[int]:
        if self.daily_quota is None:
            return None
        day = int(time.time() // _SECONDS_PER_DAY)
        with self._quota_lock:
            if day != self._quota_day:
                return self.daily_quota
            return max(0, self.daily_quota - self._quota_used)


def _parse_expiry(raw: object) -> float:
    """Unix timestamp for an ``expires`` config value."""
    if isinstance(raw, (int, float)):
        return float(raw)
    text = str(raw).strip()
    try:
        return float(text)
    except ValueError:
        pass
    import calendar

    try:
        parts = time.strptime(text, "%Y-%m-%d")
    except ValueError:
        raise ValueError(
            f"cannot parse key expiry {raw!r}: expected a unix timestamp "
            f"or YYYY-MM-DD"
        ) from None
    # End of that UTC day, so a key "expires 2026-12-31" works all day.
    return calendar.timegm(parts) + _SECONDS_PER_DAY


class Authenticator:
    """Validates request credentials against the configured key set.

    ``enforce_limits`` selects the edge role: ``True`` charges token
    buckets and quotas (router / standalone gateway), ``False`` only
    checks validity and expiry (gateways already behind a charging
    edge).  With an empty key set, :meth:`authenticate` admits everyone
    as the anonymous principal — auth is opt-in per deployment.
    """

    def __init__(self, keys: Optional[List[ApiKey]] = None,
                 enforce_limits: bool = True) -> None:
        self._keys: Dict[str, ApiKey] = {}
        for key in keys or []:
            self._keys[key.secret] = key
        self.enforce_limits = enforce_limits

    # -- construction ----------------------------------------------------
    @classmethod
    def from_spec(cls, spec, enforce_limits: bool = True) -> "Authenticator":
        """Build from a dict, a JSON string, a file path, or ``None``.

        ``None`` falls back to ``$REPRO_API_KEYS`` (itself inline JSON
        or a file path); when that is unset too, the authenticator is
        open (no keys configured).
        """
        if isinstance(spec, Authenticator):
            return spec
        if spec is None:
            spec = os.environ.get(KEYS_ENV) or None
            if spec is None:
                return cls(enforce_limits=enforce_limits)
        if isinstance(spec, dict):
            payload = spec
        else:
            text = str(spec).strip()
            if not text.startswith("{") and not text.startswith("["):
                with open(text, "r", encoding="utf-8") as handle:
                    text = handle.read()
            payload = json.loads(text)
        if isinstance(payload, list):
            entries = payload
        else:
            entries = payload.get("keys", [])
        keys = [ApiKey.from_dict(entry) for entry in entries]
        return cls(keys, enforce_limits=enforce_limits)

    @property
    def enabled(self) -> bool:
        """True when at least one key is configured (auth is enforced)."""
        return bool(self._keys)

    def key_config(self) -> Dict[str, object]:
        """The key set as config JSON (to hand shards their copy).

        Re-serializes secrets and parameters only — live bucket/quota
        state stays at this edge.
        """
        return {"keys": [
            {
                "key": key.secret,
                "name": key.name,
                "priority": key.priority,
                "rate": key.rate,
                "burst": key.burst,
                **({"daily_quota": key.daily_quota}
                   if key.daily_quota is not None else {}),
                **({"expires": key.expires_at}
                   if key.expires_at is not None else {}),
            }
            for key in self._keys.values()
        ]}

    # -- the decision ----------------------------------------------------
    def authenticate(self, credential: Optional[str]) -> Optional[ApiKey]:
        """Admit or reject one request presenting ``credential``.

        Returns the matched :class:`ApiKey` (or ``None`` when auth is
        not configured).  Raises an :class:`AuthError` subclass on
        rejection; every path records ``repro_auth_requests_total``.
        """
        if not self._keys:
            return None
        if not credential:
            record_auth("anonymous", "missing")
            raise MissingKeyError(
                "this endpoint requires an API key (Authorization: Bearer "
                "<key> or X-API-Key)")
        key = self._keys.get(credential)
        if key is None:
            record_auth("anonymous", "invalid")
            raise InvalidKeyError("unknown API key")
        if key.expired():
            record_auth(key.name, "expired")
            raise ExpiredKeyError(f"API key '{key.name}' has expired",
                                  key_name=key.name)
        if self.enforce_limits:
            try:
                key.charge()
            except AuthError as error:
                record_auth(key.name, error.outcome)
                raise
        record_auth(key.name, "ok")
        return key

    def lookup(self, credential: Optional[str]) -> Optional[ApiKey]:
        """The key for ``credential`` without charging or raising."""
        if not credential:
            return None
        return self._keys.get(credential)

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:
        role = "edge" if self.enforce_limits else "backend"
        return f"Authenticator(keys={len(self._keys)}, role={role})"


def credential_from_headers(headers) -> Optional[str]:
    """Extract the bearer secret from request headers.

    Accepts ``Authorization: Bearer <key>`` (case-insensitive scheme)
    and the plainer ``X-API-Key: <key>``.
    """
    raw = headers.get("Authorization")
    if raw:
        scheme, _, value = raw.strip().partition(" ")
        if scheme.lower() == "bearer" and value.strip():
            return value.strip()
    raw = headers.get("X-API-Key")
    if raw and raw.strip():
        return raw.strip()
    return None
