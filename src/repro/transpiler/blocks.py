"""Two-qubit block collection and the block dependency graph.

This implements preprocessing step (a) of the paper (Fig. 2): "the input
quantum circuit is partitioned into two-qubit blocks that contain gates
interacting on the same qubit pair.  The order of the blocks is given by a
block dependency graph that contains each block as a vertex and an edge
(b', b) if block b' must be computed before block b."

Single-qubit gates are attached to the enclosing block on their qubit; a
run of gates on a qubit that is never involved in a two-qubit gate forms a
single-qubit block of its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.circuits.circuit import Instruction, QuantumCircuit


@dataclass
class Block:
    """A maximal run of gates acting within one qubit pair (or one qubit)."""

    index: int
    qubits: Tuple[int, ...]
    instructions: List[Instruction] = field(default_factory=list)

    @property
    def is_two_qubit(self) -> bool:
        """True when the block spans a qubit pair."""
        return len(self.qubits) == 2

    def gate_names(self) -> List[str]:
        """Names of the gates inside the block, in order."""
        return [instruction.name for instruction in self.instructions]

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit gates inside the block."""
        return sum(1 for inst in self.instructions if len(inst.qubits) == 2)

    def as_circuit(self) -> QuantumCircuit:
        """Return the block as a standalone circuit on local qubits (0, 1).

        The block's first qubit maps to local qubit 0 and the second (if
        present) to local qubit 1.
        """
        mapping = {qubit: position for position, qubit in enumerate(self.qubits)}
        circuit = QuantumCircuit(max(2, len(self.qubits)), name=f"block{self.index}")
        for instruction in self.instructions:
            circuit.append(instruction.gate, [mapping[q] for q in instruction.qubits])
        return circuit

    def __repr__(self) -> str:
        return f"Block({self.index}, qubits={self.qubits}, gates={self.gate_names()})"


def collect_two_qubit_blocks(circuit: QuantumCircuit) -> List[Block]:
    """Partition a circuit into two-qubit blocks (plus lone 1q blocks).

    The scan keeps, per qubit, the block currently open on that qubit.  A
    two-qubit gate joins the open block if that block spans exactly the same
    qubit pair; otherwise the open blocks on both qubits are closed and a
    new block for the pair is opened.  Single-qubit gates join the open
    block on their qubit, or open a provisional single-qubit block.
    """
    blocks: List[Block] = []
    open_block: Dict[int, Optional[Block]] = {q: None for q in range(circuit.num_qubits)}

    def close(qubit: int) -> None:
        open_block[qubit] = None

    def new_block(qubits: Tuple[int, ...]) -> Block:
        block = Block(index=len(blocks), qubits=qubits)
        blocks.append(block)
        for qubit in qubits:
            open_block[qubit] = block
        return block

    for instruction in circuit.instructions:
        qubits = instruction.qubits
        if len(qubits) == 1:
            qubit = qubits[0]
            block = open_block[qubit]
            if block is None:
                block = new_block((qubit,))
            block.instructions.append(instruction)
            continue
        if len(qubits) != 2:
            raise ValueError("block collection supports 1- and 2-qubit gates only")
        pair = tuple(sorted(qubits))
        first_block = open_block[qubits[0]]
        second_block = open_block[qubits[1]]
        if (
            first_block is not None
            and first_block is second_block
            and tuple(sorted(first_block.qubits)) == pair
        ):
            first_block.instructions.append(instruction)
            continue
        # A 1q block on one of the qubits can be absorbed into the new pair block
        # if it has not been interleaved with a pair block on the other qubit.
        absorbable: List[Instruction] = []
        for block in (first_block, second_block):
            if block is not None and not block.is_two_qubit and block is blocks[-1]:
                absorbable = block.instructions + absorbable
                blocks.remove(block)
                for qubit in block.qubits:
                    open_block[qubit] = None
                # Reindex the remaining blocks.
                for position, remaining in enumerate(blocks):
                    remaining.index = position
        close(qubits[0])
        close(qubits[1])
        block = new_block(pair)
        block.instructions.extend(absorbable)
        block.instructions.append(instruction)
    return blocks


def block_dependency_graph(circuit: QuantumCircuit, blocks: List[Block]) -> nx.DiGraph:
    """Build the block dependency DAG: an edge (b', b) if b' precedes b on a qubit."""
    graph = nx.DiGraph()
    for block in blocks:
        graph.add_node(block.index, block=block)
    last_block_on_qubit: Dict[int, int] = {}
    # Blocks are created in program order, and all gates of a block on a given
    # qubit appear contiguously relative to other blocks using that qubit, so
    # scanning blocks in index order gives the per-qubit ordering.
    for block in blocks:
        for qubit in block.qubits:
            if qubit in last_block_on_qubit and last_block_on_qubit[qubit] != block.index:
                graph.add_edge(last_block_on_qubit[qubit], block.index)
            last_block_on_qubit[qubit] = block.index
    return graph
