"""Cost analysis of a circuit on a target: fidelity, duration, idle time."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.circuits.circuit import QuantumCircuit
from repro.hardware.target import Target
from repro.transpiler.scheduling import asap_schedule, gate_fidelity


@dataclass
class CircuitCost:
    """Aggregate costs of a circuit on a target."""

    gate_fidelity_product: float
    log_fidelity: float
    duration: float
    total_idle_time: float
    idle_survival_probability: float
    two_qubit_gate_count: int
    gate_count: int

    @property
    def combined_score(self) -> float:
        """Product of gate fidelity and idle-time survival probability."""
        return self.gate_fidelity_product * self.idle_survival_probability

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable form; floats round-trip exactly."""
        return {
            "gate_fidelity_product": self.gate_fidelity_product,
            "log_fidelity": self.log_fidelity,
            "duration": self.duration,
            "total_idle_time": self.total_idle_time,
            "idle_survival_probability": self.idle_survival_probability,
            "two_qubit_gate_count": self.two_qubit_gate_count,
            "gate_count": self.gate_count,
        }

    @staticmethod
    def from_dict(payload: Dict[str, float]) -> "CircuitCost":
        """Inverse of :meth:`to_dict`."""
        return CircuitCost(
            gate_fidelity_product=float(payload["gate_fidelity_product"]),
            log_fidelity=float(payload["log_fidelity"]),
            duration=float(payload["duration"]),
            total_idle_time=float(payload["total_idle_time"]),
            idle_survival_probability=float(payload["idle_survival_probability"]),
            two_qubit_gate_count=int(payload["two_qubit_gate_count"]),
            gate_count=int(payload["gate_count"]),
        )


def analyze_cost(circuit: QuantumCircuit, target: Target) -> CircuitCost:
    """Compute the fidelity / duration / idle-time costs of a circuit.

    The circuit fidelity is the product of individual gate fidelities
    (Section V.A); the idle-time survival probability follows Eq. (7) with
    the target's coherence time.
    """
    log_fidelity = 0.0
    for instruction in circuit.instructions:
        log_fidelity += math.log(gate_fidelity(instruction, target))
    schedule = asap_schedule(circuit, target)
    idle = schedule.total_idle_time
    survival = target.idle_survival_probability(idle)
    return CircuitCost(
        gate_fidelity_product=math.exp(log_fidelity),
        log_fidelity=log_fidelity,
        duration=schedule.total_duration,
        total_idle_time=idle,
        idle_survival_probability=survival,
        two_qubit_gate_count=circuit.two_qubit_gate_count(),
        gate_count=len(circuit),
    )
