"""Transpiler passes: routing, block collection, translation, scheduling, costs.

These passes provide the circuit-manipulation substrate that both the
baseline adaptation techniques (Section III) and the SMT-based adaptation
(Section IV) are built on:

* :mod:`repro.transpiler.routing` -- layout + SWAP insertion so that every
  two-qubit gate acts on connected qubits (the paper uses Qiskit for this
  step before adaptation);
* :mod:`repro.transpiler.blocks` -- partitioning into two-qubit blocks and
  the block dependency graph (preprocessing step (a) of Fig. 2);
* :mod:`repro.transpiler.basis` -- direct basis translation through an
  equivalence library (the baseline adapter and the reference cost);
* :mod:`repro.transpiler.scheduling` -- ASAP scheduling, circuit duration
  and qubit idle time;
* :mod:`repro.transpiler.cost` -- fidelity / duration / idle-time cost
  analysis of a circuit on a target.

The template-optimization baseline lives in :mod:`repro.core.baselines`
because it shares the substitution-rule machinery with the SMT adapter.
"""

from repro.transpiler.routing import route_circuit, trivial_layout
from repro.transpiler.blocks import Block, collect_two_qubit_blocks, block_dependency_graph
from repro.transpiler.basis import translate_to_basis, translate_block_reference
from repro.transpiler.scheduling import ScheduledCircuit, asap_schedule
from repro.transpiler.cost import CircuitCost, analyze_cost

__all__ = [
    "route_circuit",
    "trivial_layout",
    "Block",
    "collect_two_qubit_blocks",
    "block_dependency_graph",
    "translate_to_basis",
    "translate_block_reference",
    "ScheduledCircuit",
    "asap_schedule",
    "CircuitCost",
    "analyze_cost",
]
