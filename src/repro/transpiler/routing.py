"""Layout and routing: make every two-qubit gate act on connected qubits.

The paper transpiles the input circuit to the hardware topology with Qiskit
before the adaptation step; this module provides the equivalent
functionality.  The router is intentionally simple and deterministic: a
trivial initial layout followed by greedy SWAP insertion along shortest
paths in the coupling graph.  Inserted SWAPs are regular ``swap`` gates, so
the subsequent adaptation step is free to choose between the hardware's
swap realizations for them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.hardware.target import Target


def trivial_layout(circuit: QuantumCircuit, target: Target) -> Dict[int, int]:
    """Identity mapping from virtual to physical qubits."""
    if circuit.num_qubits > target.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but target has {target.num_qubits}"
        )
    return {virtual: virtual for virtual in range(circuit.num_qubits)}


def route_circuit(
    circuit: QuantumCircuit,
    target: Target,
    initial_layout: Dict[int, int] | None = None,
) -> QuantumCircuit:
    """Insert SWAP gates so every multi-qubit gate acts on coupled qubits.

    Returns a new circuit over the target's physical qubits.  Measurement of
    routing quality (number of inserted SWAPs) can be read off by comparing
    ``count_ops()["swap"]`` before and after.
    """
    layout = dict(initial_layout or trivial_layout(circuit, target))
    graph = target.coupling_graph()
    routed = QuantumCircuit(target.num_qubits, name=f"{circuit.name}_routed")

    for instruction in circuit.instructions:
        if len(instruction.qubits) == 1:
            routed.append(instruction.gate, [layout[instruction.qubits[0]]])
            continue
        if len(instruction.qubits) != 2:
            raise ValueError("routing supports 1- and 2-qubit gates only")
        virtual_a, virtual_b = instruction.qubits
        physical_a, physical_b = layout[virtual_a], layout[virtual_b]
        if not target.are_connected(physical_a, physical_b):
            path = nx.shortest_path(graph, physical_a, physical_b)
            # Move qubit A along the path until it neighbours qubit B.
            for step in range(len(path) - 2):
                routed.swap(path[step], path[step + 1])
                _swap_layout_entries(layout, path[step], path[step + 1])
            physical_a, physical_b = layout[virtual_a], layout[virtual_b]
            if not target.are_connected(physical_a, physical_b):
                raise RuntimeError("routing failed to connect the qubit pair")
        routed.append(instruction.gate, [physical_a, physical_b])
    return routed


def _swap_layout_entries(layout: Dict[int, int], physical_a: int, physical_b: int) -> None:
    """Update the virtual->physical layout after swapping two physical qubits."""
    inverse = {physical: virtual for virtual, physical in layout.items()}
    virtual_a = inverse.get(physical_a)
    virtual_b = inverse.get(physical_b)
    if virtual_a is not None:
        layout[virtual_a] = physical_b
    if virtual_b is not None:
        layout[virtual_b] = physical_a
