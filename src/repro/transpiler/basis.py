"""Direct basis translation through an equivalence library.

"Direct Basis Translation ... translates the quantum gates from the source
basis defined by the input circuit to the target basis according to a
pre-defined equivalence library" (Section III).  For the spin-qubit target
the library replaces every non-native two-qubit gate with CZ gates plus
single-qubit gates, which is also the reference adaptation used to compute
the per-block reference costs in the preprocessing step.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.circuits import gates as glib
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.hardware.target import Target
from repro.transpiler.blocks import Block


def _cx_via_cz(control: int, target: int) -> List[Instruction]:
    """CNOT = (I x H) CZ (I x H) with the Hadamards on the target qubit."""
    return [
        Instruction(glib.h(), (target,)),
        Instruction(glib.cz(), (control, target)),
        Instruction(glib.h(), (target,)),
    ]


def _cy_via_cz(control: int, target: int) -> List[Instruction]:
    """CY = (I x Sdg H) CZ (I x H S) on the target qubit."""
    return [
        Instruction(glib.sdg(), (target,)),
        Instruction(glib.h(), (target,)),
        Instruction(glib.cz(), (control, target)),
        Instruction(glib.h(), (target,)),
        Instruction(glib.s(), (target,)),
    ]


def _swap_via_cz(qubit_a: int, qubit_b: int) -> List[Instruction]:
    """SWAP as three CNOTs, each translated to CZ + Hadamards."""
    instructions: List[Instruction] = []
    instructions.extend(_cx_via_cz(qubit_a, qubit_b))
    instructions.extend(_cx_via_cz(qubit_b, qubit_a))
    instructions.extend(_cx_via_cz(qubit_a, qubit_b))
    return instructions


def _iswap_via_cz(qubit_a: int, qubit_b: int) -> List[Instruction]:
    """iSWAP through the verified KAK resynthesis (2 CZ + single-qubit gates)."""
    from repro.synthesis.two_qubit import decompose_two_qubit

    decomposed = decompose_two_qubit(glib.iswap().to_matrix())
    mapping = {0: qubit_a, 1: qubit_b}
    return [
        Instruction(inst.gate, tuple(mapping[q] for q in inst.qubits))
        for inst in decomposed.instructions
    ]


def _cphase_via_cz(theta: float, control: int, target: int) -> List[Instruction]:
    """Controlled-phase via two CNOTs (each a CZ + Hadamards) and Rz gates."""
    instructions = [
        Instruction(glib.rz(theta / 2), (control,)),
        Instruction(glib.rz(theta / 2), (target,)),
    ]
    instructions.extend(_cx_via_cz(control, target))
    instructions.append(Instruction(glib.rz(-theta / 2), (target,)))
    instructions.extend(_cx_via_cz(control, target))
    return instructions


def _crx_via_cz(theta: float, control: int, target: int) -> List[Instruction]:
    """Controlled-X-rotation via two CZ (standard two-CNOT construction)."""
    instructions = [
        Instruction(glib.h(), (target,)),
        Instruction(glib.rz(theta / 2), (target,)),
    ]
    instructions.extend(_cx_via_cz(control, target))
    instructions.append(Instruction(glib.rz(-theta / 2), (target,)))
    instructions.extend(_cx_via_cz(control, target))
    instructions.append(Instruction(glib.h(), (target,)))
    return instructions


def translate_instruction_to_cz(instruction: Instruction) -> List[Instruction]:
    """Translate one instruction into the CZ + SU(2) basis.

    Native single-qubit gates and CZ pass through unchanged; CX, CY, SWAP,
    iSWAP, CPHASE, CRX/CROT and RZX are rewritten; anything else raises.
    """
    name = instruction.name
    qubits = instruction.qubits
    if len(qubits) == 1 or name in ("cz", "cz_d"):
        return [instruction]
    if name == "cx":
        return _cx_via_cz(*qubits)
    if name == "cy":
        return _cy_via_cz(*qubits)
    if name in ("swap", "swap_d", "swap_c"):
        return _swap_via_cz(*qubits)
    if name == "iswap":
        return _iswap_via_cz(*qubits)
    if name == "cphase":
        return _cphase_via_cz(instruction.gate.params[0], *qubits)
    if name in ("crx", "crot"):
        theta = instruction.gate.params[0]
        if name == "crot" and len(instruction.gate.params) > 1 and abs(instruction.gate.params[1]) > 1e-12:
            raise ValueError("only CROT about the x axis can be translated directly")
        return _crx_via_cz(theta, *qubits)
    if name == "crz":
        theta = instruction.gate.params[0]
        instructions = [Instruction(glib.rz(theta / 2), (qubits[1],))]
        instructions.extend(_cx_via_cz(*qubits))
        instructions.append(Instruction(glib.rz(-theta / 2), (qubits[1],)))
        instructions.extend(_cx_via_cz(*qubits))
        return instructions
    if name == "rzx":
        theta = instruction.gate.params[0]
        instructions = [Instruction(glib.h(), (qubits[1],)), Instruction(glib.rz(theta / 2), (qubits[1],))]
        instructions.extend(_cx_via_cz(*qubits))
        instructions.append(Instruction(glib.rz(-theta / 2), (qubits[1],)))
        instructions.extend(_cx_via_cz(*qubits))
        instructions.append(Instruction(glib.h(), (qubits[1],)))
        return instructions
    raise KeyError(f"no CZ-basis translation known for gate {name!r}")


def translate_to_basis(circuit: QuantumCircuit, target: Target) -> QuantumCircuit:
    """Direct basis translation of a whole circuit to the target's CZ basis.

    Every two-qubit gate that is not native to the target is replaced by CZ
    gates and single-qubit gates; single-qubit gates are kept as-is (the
    targets support arbitrary SU(2) rotations).
    """
    translated = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_basis")
    for instruction in circuit.instructions:
        if len(instruction.qubits) >= 2 and target.supports(instruction.name):
            # Keep native gates, but the *baseline* of the paper replaces all
            # non-CZ two-qubit gates; only cz passes through here because the
            # input circuits use the IBM-like basis.
            translated.append(instruction.gate, instruction.qubits)
            continue
        for replacement in translate_instruction_to_cz(instruction):
            translated.append(replacement.gate, replacement.qubits)
    return translated


def translate_block_reference(block: Block) -> List[Instruction]:
    """Reference (baseline) translation of a block: every gate through CZ.

    This is the "naive adaptation ... used as a common reference cost" of
    the preprocessing step.
    """
    instructions: List[Instruction] = []
    for instruction in block.instructions:
        instructions.extend(translate_instruction_to_cz(instruction))
    return instructions
