"""ASAP scheduling, circuit duration and qubit idle time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.hardware.target import Target


@dataclass
class ScheduledCircuit:
    """A circuit with start times (ns) assigned to every instruction."""

    circuit: QuantumCircuit
    target: Target
    start_times: List[float] = field(default_factory=list)
    durations: List[float] = field(default_factory=list)

    @property
    def total_duration(self) -> float:
        """Wall-clock duration of the schedule."""
        if not self.start_times:
            return 0.0
        return max(start + duration for start, duration in zip(self.start_times, self.durations))

    def busy_time_per_qubit(self) -> Dict[int, float]:
        """Total time each qubit spends executing gates."""
        busy: Dict[int, float] = {q: 0.0 for q in range(self.circuit.num_qubits)}
        for instruction, duration in zip(self.circuit.instructions, self.durations):
            for qubit in instruction.qubits:
                busy[qubit] += duration
        return busy

    def idle_time_per_qubit(self, active_only: bool = True) -> Dict[int, float]:
        """Idle time of each qubit: total duration minus its busy time.

        With ``active_only`` (the default) qubits that never execute a gate
        are excluded, matching the convention that unused qubits are not
        initialized.
        """
        total = self.total_duration
        busy = self.busy_time_per_qubit()
        idle: Dict[int, float] = {}
        for qubit, busy_time in busy.items():
            if active_only and busy_time == 0.0:
                continue
            idle[qubit] = total - busy_time
        return idle

    @property
    def total_idle_time(self) -> float:
        """Summed idle time over the active qubits (the Fig. 6 metric)."""
        return sum(self.idle_time_per_qubit().values())

    def idle_windows(self) -> List[Tuple[int, float, float]]:
        """Explicit idle intervals ``(qubit, start, duration)`` of active qubits.

        Used by the noisy simulator to apply thermal relaxation while a
        qubit waits between gates (and before the end of the circuit).
        """
        total = self.total_duration
        last_end: Dict[int, float] = {}
        windows: List[Tuple[int, float, float]] = []
        order = sorted(
            range(len(self.start_times)), key=lambda index: self.start_times[index]
        )
        for index in order:
            instruction = self.circuit.instructions[index]
            start = self.start_times[index]
            for qubit in instruction.qubits:
                previous_end = last_end.get(qubit, 0.0)
                if start - previous_end > 1e-9:
                    windows.append((qubit, previous_end, start - previous_end))
                last_end[qubit] = start + self.durations[index]
        for qubit, end in last_end.items():
            if total - end > 1e-9:
                windows.append((qubit, end, total - end))
        return windows


def gate_duration(instruction: Instruction, target: Target) -> float:
    """Duration (ns) of one instruction on the target."""
    return target.gate_properties(instruction.name, len(instruction.qubits)).duration


def gate_fidelity(instruction: Instruction, target: Target) -> float:
    """Fidelity of one instruction on the target."""
    return target.gate_properties(instruction.name, len(instruction.qubits)).fidelity


def asap_schedule(circuit: QuantumCircuit, target: Target) -> ScheduledCircuit:
    """As-soon-as-possible schedule of a circuit on a target.

    Every instruction starts as soon as all qubits it uses become free.
    """
    qubit_free_at: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
    start_times: List[float] = []
    durations: List[float] = []
    for instruction in circuit.instructions:
        duration = gate_duration(instruction, target)
        start = max(qubit_free_at[q] for q in instruction.qubits)
        for qubit in instruction.qubits:
            qubit_free_at[qubit] = start + duration
        start_times.append(start)
        durations.append(duration)
    return ScheduledCircuit(circuit, target, start_times, durations)
