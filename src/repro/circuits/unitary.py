"""Unitary computation and comparison utilities.

The functions here turn circuits and instructions into full unitary
matrices (little-endian qubit ordering) and compare unitaries up to a
global phase, which is how all substitution rules of the paper are verified
to be genuine circuit equivalences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit


def instruction_unitary(instruction: Instruction, num_qubits: int) -> np.ndarray:
    """Return the ``2**num_qubits`` unitary of a single instruction."""
    return expand_gate_matrix(
        instruction.gate.to_matrix(), instruction.qubits, num_qubits
    )


def expand_gate_matrix(
    matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a k-qubit gate matrix acting on ``qubits`` into the full register.

    The gate matrix is given in little-endian convention over its own qubit
    list: ``qubits[0]`` is the least significant bit of the gate's index.
    """
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError("gate matrix does not match the number of qubits")
    full_dim = 2**num_qubits
    result = np.zeros((full_dim, full_dim), dtype=complex)
    other_qubits = [q for q in range(num_qubits) if q not in qubits]

    for column in range(full_dim):
        # Decompose the column index into gate-local and spectator parts.
        local_in = 0
        for position, qubit in enumerate(qubits):
            if (column >> qubit) & 1:
                local_in |= 1 << position
        spectator = column
        for qubit in qubits:
            spectator &= ~(1 << qubit)
        for local_out in range(2**k):
            amplitude = matrix[local_out, local_in]
            if amplitude == 0:
                continue
            row = spectator
            for position, qubit in enumerate(qubits):
                if (local_out >> position) & 1:
                    row |= 1 << qubit
            result[row, column] += amplitude
    return result


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Return the unitary of a whole circuit (little-endian).

    Each gate is contracted locally against the row axes of the running
    unitary (the column index rides along as a batch axis), so a 1q/2q gate
    costs ``O(4^n)`` instead of the ``O(8^n)`` full matrix product of the
    dense path (:func:`circuit_unitary_dense`).
    """
    from repro.simulator.kernels import apply_gate_tensor

    num_qubits = circuit.num_qubits
    dimension = 2**num_qubits
    tensor = np.eye(dimension, dtype=complex).reshape((2,) * num_qubits + (dimension,))
    for instruction in circuit.instructions:
        tensor = apply_gate_tensor(
            tensor, instruction.gate.to_matrix(), instruction.qubits, num_qubits
        )
    return tensor.reshape(dimension, dimension)


def circuit_unitary_dense(circuit: QuantumCircuit) -> np.ndarray:
    """Dense reference implementation of :func:`circuit_unitary`."""
    dimension = 2**circuit.num_qubits
    unitary = np.eye(dimension, dtype=complex)
    for instruction in circuit.instructions:
        unitary = instruction_unitary(instruction, circuit.num_qubits) @ unitary
    return unitary


def allclose_up_to_global_phase(
    first: np.ndarray, second: np.ndarray, atol: float = 1e-9
) -> bool:
    """Return True when two unitaries are equal up to a global phase."""
    if first.shape != second.shape:
        return False
    # Find the largest-magnitude entry of `first` to fix the relative phase.
    index = np.unravel_index(np.argmax(np.abs(first)), first.shape)
    if abs(first[index]) < atol:
        return bool(np.allclose(first, second, atol=atol))
    if abs(second[index]) < atol:
        return False
    phase = second[index] / first[index]
    if not np.isclose(abs(phase), 1.0, atol=1e-7):
        return False
    return bool(np.allclose(first * phase, second, atol=atol))


def process_fidelity(first: np.ndarray, second: np.ndarray) -> float:
    """Return the process fidelity |tr(U^dag V)|^2 / d^2 between two unitaries."""
    if first.shape != second.shape:
        raise ValueError("unitaries must have the same dimension")
    dimension = first.shape[0]
    overlap = np.trace(first.conj().T @ second)
    return float(abs(overlap) ** 2 / dimension**2)
