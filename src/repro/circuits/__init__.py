"""Quantum circuit intermediate representation.

This subpackage provides the circuit data structures used throughout the
reproduction: a gate library with exact unitaries (:mod:`repro.circuits.gates`),
a :class:`QuantumCircuit` container of gate instructions, unitary computation
and comparison utilities, and a lightweight DAG view used by the transpiler
passes.

The qubit-ordering convention is little-endian (qubit 0 is the least
significant bit of a basis-state index), matching Qiskit so that published
gate identities can be checked verbatim.
"""

from repro.circuits.gates import (
    Gate,
    CROTGate,
    adjoint,
    controlled_phase,
    crot,
    crx,
    cry,
    crz,
    cx,
    cy,
    cz,
    h,
    identity,
    iswap,
    rx,
    ry,
    rz,
    s,
    sdg,
    swap,
    t,
    tdg,
    u3,
    x,
    y,
    z,
    GATE_BUILDERS,
)
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.unitary import (
    allclose_up_to_global_phase,
    circuit_unitary,
    instruction_unitary,
    process_fidelity,
)
from repro.circuits.dag import CircuitDag

__all__ = [
    "Gate",
    "CROTGate",
    "Instruction",
    "QuantumCircuit",
    "CircuitDag",
    "adjoint",
    "allclose_up_to_global_phase",
    "circuit_unitary",
    "instruction_unitary",
    "process_fidelity",
    "controlled_phase",
    "crot",
    "crx",
    "cry",
    "crz",
    "cx",
    "cy",
    "cz",
    "h",
    "identity",
    "iswap",
    "rx",
    "ry",
    "rz",
    "s",
    "sdg",
    "swap",
    "t",
    "tdg",
    "u3",
    "x",
    "y",
    "z",
    "GATE_BUILDERS",
]
