"""Gate library with exact unitary matrices.

A :class:`Gate` is an immutable description of a quantum operation: a name,
the number of qubits it acts on, an optional parameter list and its unitary
matrix.  Hardware-specific realizations of the same unitary (for example the
adiabatic and diabatic CZ of the spin-qubit platform, or the direct and
composite swap) share a matrix but carry different names, so that cost
models can attach distinct fidelities and durations to them.

All matrices are given in little-endian convention: for a two-qubit gate
acting on (q0, q1), q0 indexes the least significant bit of the basis state.
Controlled gates take the *first* qubit of the instruction as the control.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Gate:
    """An immutable quantum gate.

    Parameters
    ----------
    name:
        Canonical lowercase gate name (e.g. ``"cx"``, ``"swap_d"``).
    num_qubits:
        Number of qubits the gate acts on.
    params:
        Tuple of real parameters (rotation angles).
    matrix:
        The unitary matrix as a nested tuple (kept hashable); use
        :meth:`to_matrix` to obtain a numpy array.
    label:
        Optional human-readable label.
    """

    name: str
    num_qubits: int
    params: Tuple[float, ...] = ()
    matrix: Tuple[Tuple[complex, ...], ...] = field(default=(), repr=False)
    label: Optional[str] = None

    def to_matrix(self) -> np.ndarray:
        """Return the gate unitary as a numpy array."""
        return np.array(self.matrix, dtype=complex)

    def inverse(self) -> "Gate":
        """Return the adjoint gate."""
        return adjoint(self)

    def with_name(self, name: str) -> "Gate":
        """Return a copy of this gate under a different name (same unitary)."""
        return Gate(name, self.num_qubits, self.params, self.matrix, self.label)

    def to_dict(self) -> dict:
        """JSON-serializable form; exact — floats round-trip bit-identically.

        Complex matrix entries are stored as ``[real, imag]`` pairs, so the
        payload survives ``json.dumps``/``loads`` without custom encoders.
        """
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "params": list(self.params),
            "matrix": [
                [[entry.real, entry.imag] for entry in row] for row in self.matrix
            ],
            "label": self.label,
        }

    @staticmethod
    def from_dict(payload: dict) -> "Gate":
        """Inverse of :meth:`to_dict`."""
        return Gate(
            name=payload["name"],
            num_qubits=int(payload["num_qubits"]),
            params=tuple(float(p) for p in payload["params"]),
            matrix=tuple(
                tuple(complex(entry[0], entry[1]) for entry in row)
                for row in payload["matrix"]
            ),
            label=payload.get("label"),
        )

    def __repr__(self) -> str:
        if self.params:
            rendered = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({rendered})"
        return self.name


def _freeze(matrix: np.ndarray) -> Tuple[Tuple[complex, ...], ...]:
    return tuple(tuple(complex(entry) for entry in row) for row in matrix)


def _gate(name: str, matrix: np.ndarray, params: Sequence[float] = ()) -> Gate:
    matrix = np.asarray(matrix, dtype=complex)
    dimension = matrix.shape[0]
    num_qubits = int(round(math.log2(dimension)))
    if 2**num_qubits != dimension or matrix.shape != (dimension, dimension):
        raise ValueError(f"matrix of gate {name!r} has invalid shape {matrix.shape}")
    return Gate(name, num_qubits, tuple(float(p) for p in params), _freeze(matrix))


def adjoint(gate: Gate) -> Gate:
    """Return the Hermitian adjoint of a gate (named ``<name>_dg``)."""
    matrix = gate.to_matrix().conj().T
    name = gate.name[:-3] if gate.name.endswith("_dg") else gate.name + "_dg"
    return _gate(name, matrix, tuple(-p for p in gate.params))


# ----------------------------------------------------------------------
# Single-qubit gates
# ----------------------------------------------------------------------
def identity(num_qubits: int = 1) -> Gate:
    """Identity gate on ``num_qubits`` qubits."""
    return _gate("id", np.eye(2**num_qubits))


def x() -> Gate:
    """Pauli X."""
    return _gate("x", np.array([[0, 1], [1, 0]]))


def y() -> Gate:
    """Pauli Y."""
    return _gate("y", np.array([[0, -1j], [1j, 0]]))


def z() -> Gate:
    """Pauli Z."""
    return _gate("z", np.array([[1, 0], [0, -1]]))


def h() -> Gate:
    """Hadamard."""
    return _gate("h", np.array([[1, 1], [1, -1]]) / math.sqrt(2))


def s() -> Gate:
    """Phase gate S = sqrt(Z)."""
    return _gate("s", np.array([[1, 0], [0, 1j]]))


def sdg() -> Gate:
    """Adjoint phase gate."""
    return _gate("sdg", np.array([[1, 0], [0, -1j]]))


def t() -> Gate:
    """T gate (pi/8)."""
    return _gate("t", np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]]))


def tdg() -> Gate:
    """Adjoint T gate."""
    return _gate("tdg", np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]]))


def rx(theta: float) -> Gate:
    """Rotation around X by ``theta``."""
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    return _gate("rx", np.array([[cos, -1j * sin], [-1j * sin, cos]]), [theta])


def ry(theta: float) -> Gate:
    """Rotation around Y by ``theta``."""
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    return _gate("ry", np.array([[cos, -sin], [sin, cos]]), [theta])


def rz(theta: float) -> Gate:
    """Rotation around Z by ``theta``."""
    phase = cmath.exp(1j * theta / 2)
    return _gate("rz", np.array([[1 / phase, 0], [0, phase]]), [theta])


def u1(lam: float) -> Gate:
    """Diagonal phase rotation U1(lambda) = diag(1, exp(i lambda)).

    Same unitary as :func:`rz` up to a global phase, but with the qelib1
    phase convention (the |0> amplitude is untouched).
    """
    return _gate("u1", np.array([[1, 0], [0, cmath.exp(1j * lam)]]), [lam])


def u2(phi: float, lam: float) -> Gate:
    """The qelib1 U2 gate: u3(pi/2, phi, lambda)."""
    factor = 1 / math.sqrt(2)
    matrix = factor * np.array(
        [
            [1, -cmath.exp(1j * lam)],
            [cmath.exp(1j * phi), cmath.exp(1j * (phi + lam))],
        ]
    )
    return _gate("u2", matrix, [phi, lam])


def sx() -> Gate:
    """Square root of X, with SX^2 = X exactly (not just up to phase)."""
    return _gate("sx", np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]) / 2)


def sxdg() -> Gate:
    """Adjoint square root of X."""
    return _gate("sxdg", np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]]) / 2)


def u3(theta: float, phi: float, lam: float) -> Gate:
    """General SU(2) rotation with Euler angles (theta, phi, lambda)."""
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    matrix = np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ]
    )
    return _gate("u3", matrix, [theta, phi, lam])


# ----------------------------------------------------------------------
# Two-qubit gates
# ----------------------------------------------------------------------
def _controlled(name: str, target_matrix: np.ndarray, params: Sequence[float] = ()) -> Gate:
    """Build a controlled gate with the first qubit as control (little-endian)."""
    matrix = np.eye(4, dtype=complex)
    # Little-endian: control is qubit 0, so control=1 states are indices 1 and 3.
    matrix[np.ix_([1, 3], [1, 3])] = target_matrix
    return _gate(name, matrix, params)


def cx() -> Gate:
    """Controlled-NOT (control = first qubit)."""
    return _controlled("cx", np.array([[0, 1], [1, 0]], dtype=complex))


def cy() -> Gate:
    """Controlled-Y."""
    return _controlled("cy", np.array([[0, -1j], [1j, 0]], dtype=complex))


def cz() -> Gate:
    """Controlled-Z (adiabatic CZ on the spin-qubit platform)."""
    return _gate("cz", np.diag([1, 1, 1, -1]))


def cz_diabatic() -> Gate:
    """Diabatic CZ: same unitary as :func:`cz`, different hardware realization."""
    return _gate("cz_d", np.diag([1, 1, 1, -1]))


def controlled_phase(theta: float) -> Gate:
    """CPHASE gate: phase ``exp(i theta)`` on the |11> state."""
    return _gate("cphase", np.diag([1, 1, 1, cmath.exp(1j * theta)]), [theta])


def crx(theta: float) -> Gate:
    """Controlled X rotation."""
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    return _controlled(
        "crx", np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex), [theta]
    )


def cry(theta: float) -> Gate:
    """Controlled Y rotation."""
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    return _controlled(
        "cry", np.array([[cos, -sin], [sin, cos]], dtype=complex), [theta]
    )


def crz(theta: float) -> Gate:
    """Controlled Z rotation."""
    phase = cmath.exp(1j * theta / 2)
    return _controlled(
        "crz", np.array([[1 / phase, 0], [0, phase]], dtype=complex), [theta]
    )


def crot(theta: float, phi: float = 0.0) -> Gate:
    """Conditional rotation (CROT) of the spin-qubit platform.

    Rotates the target qubit by ``theta`` around an axis in the XY plane at
    azimuthal angle ``phi`` when the control qubit is |1>.  ``crot(pi)`` is a
    CNOT up to a single-qubit phase correction on the control
    (``CNOT = (S on control) . CROT(pi)``).
    """
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    axis_rotation = np.array(
        [
            [cos, -1j * sin * cmath.exp(-1j * phi)],
            [-1j * sin * cmath.exp(1j * phi), cos],
        ],
        dtype=complex,
    )
    return _controlled("crot", axis_rotation, [theta, phi])


def CROTGate(theta: float, phi: float = 0.0) -> Gate:
    """Alias of :func:`crot` kept for API symmetry with the paper's naming."""
    return crot(theta, phi)


def swap() -> Gate:
    """SWAP gate (abstract)."""
    return _gate(
        "swap",
        np.array([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]),
    )


def swap_direct() -> Gate:
    """Diabatic (direct) swap realization of the spin platform (swap_d)."""
    return swap().with_name("swap_d")


def swap_composite() -> Gate:
    """Composite-pulse swap realization of the spin platform (swap_c)."""
    return swap().with_name("swap_c")


def iswap() -> Gate:
    """iSWAP gate."""
    return _gate(
        "iswap",
        np.array([[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]),
    )


def rzx(theta: float) -> Gate:
    """ZX interaction rotation exp(-i theta/2 Z (x) X) (control-first order)."""
    cos, sin = math.cos(theta / 2), math.sin(theta / 2)
    # Z acts on qubit 0 (first), X on qubit 1 (second); little-endian kron order
    # places qubit 0 as the rightmost factor.
    z_matrix = np.diag([1.0, -1.0])
    x_matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
    generator = np.kron(x_matrix, z_matrix)
    matrix = cos * np.eye(4) - 1j * sin * generator
    return _gate("rzx", matrix, [theta])


# ----------------------------------------------------------------------
# Builders registry (used by text serialization and random circuit generation)
# ----------------------------------------------------------------------
GATE_BUILDERS: Dict[str, Callable[..., Gate]] = {
    "id": identity,
    "x": x,
    "y": y,
    "z": z,
    "h": h,
    "s": s,
    "sdg": sdg,
    "t": t,
    "tdg": tdg,
    "sx": sx,
    "sxdg": sxdg,
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "u1": u1,
    "u2": u2,
    "u3": u3,
    "cx": cx,
    "cy": cy,
    "cz": cz,
    "cz_d": cz_diabatic,
    "cphase": controlled_phase,
    "crx": crx,
    "cry": cry,
    "crz": crz,
    "crot": crot,
    "swap": swap,
    "swap_d": swap_direct,
    "swap_c": swap_composite,
    "iswap": iswap,
    "rzx": rzx,
}


def build_gate(name: str, *params: float) -> Gate:
    """Construct a gate by name from :data:`GATE_BUILDERS`."""
    if name not in GATE_BUILDERS:
        raise KeyError(f"unknown gate {name!r}")
    return GATE_BUILDERS[name](*params)
