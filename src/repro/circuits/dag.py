"""A lightweight DAG view of a circuit.

The DAG has one node per instruction; a directed edge connects two
instructions when they act on a shared qubit and are consecutive on that
qubit.  The transpiler passes use this view for dependency analysis (block
dependency graph construction, ASAP scheduling and idle-time accounting).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.circuits.circuit import Instruction, QuantumCircuit


class CircuitDag:
    """Dependency DAG over the instructions of a circuit."""

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.graph = nx.DiGraph()
        last_on_qubit: Dict[int, int] = {}
        for index, instruction in enumerate(circuit.instructions):
            self.graph.add_node(index, instruction=instruction)
            for qubit in instruction.qubits:
                if qubit in last_on_qubit:
                    self.graph.add_edge(last_on_qubit[qubit], index)
                last_on_qubit[qubit] = index

    # ------------------------------------------------------------------
    def instruction(self, node: int) -> Instruction:
        """Return the instruction at DAG node ``node``."""
        return self.graph.nodes[node]["instruction"]

    def topological_order(self) -> List[int]:
        """Return node indices in a topological (execution-compatible) order."""
        return list(nx.topological_sort(self.graph))

    def predecessors(self, node: int) -> List[int]:
        """Direct predecessors of a node."""
        return list(self.graph.predecessors(node))

    def successors(self, node: int) -> List[int]:
        """Direct successors of a node."""
        return list(self.graph.successors(node))

    def longest_path_length(self, weights: Dict[int, float] | None = None) -> float:
        """Length of the longest path, optionally weighting nodes.

        Without weights every node counts 1 (this equals the circuit depth).
        """
        order = self.topological_order()
        distance: Dict[int, float] = {}
        for node in order:
            node_weight = 1.0 if weights is None else weights[node]
            incoming = [distance[p] for p in self.graph.predecessors(node)]
            distance[node] = node_weight + (max(incoming) if incoming else 0.0)
        return max(distance.values(), default=0.0)

    def layers(self) -> List[List[int]]:
        """Group nodes into as-soon-as-possible layers."""
        level: Dict[int, int] = {}
        for node in self.topological_order():
            preds = list(self.graph.predecessors(node))
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        grouped: Dict[int, List[int]] = {}
        for node, node_level in level.items():
            grouped.setdefault(node_level, []).append(node)
        return [sorted(grouped[l]) for l in sorted(grouped)]

    def as_networkx(self) -> nx.DiGraph:
        """Return the underlying networkx graph (a reference, not a copy)."""
        return self.graph
