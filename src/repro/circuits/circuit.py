"""The :class:`QuantumCircuit` container and its instructions.

A circuit is an ordered list of :class:`Instruction` objects (gate plus the
qubits it acts on).  Convenience methods mirror the usual quantum-SDK
surface (``circuit.h(0)``, ``circuit.cx(0, 1)``, ...), and circuits support
composition, inversion, slicing by qubit pair and a plain-text dump used in
examples and golden tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuits import gates as glib
from repro.circuits.gates import Gate


@dataclass(frozen=True)
class Instruction:
    """A gate applied to a specific tuple of qubits."""

    gate: Gate
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.qubits) != self.gate.num_qubits:
            raise ValueError(
                f"gate {self.gate.name} acts on {self.gate.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in instruction: {self.qubits}")

    @property
    def name(self) -> str:
        """The gate name."""
        return self.gate.name

    def to_dict(self) -> dict:
        """JSON-serializable form (see :meth:`Gate.to_dict`)."""
        return {"gate": self.gate.to_dict(), "qubits": list(self.qubits)}

    @staticmethod
    def from_dict(payload: dict) -> "Instruction":
        """Inverse of :meth:`to_dict`."""
        return Instruction(
            Gate.from_dict(payload["gate"]),
            tuple(int(q) for q in payload["qubits"]),
        )

    def __repr__(self) -> str:
        qubits = ", ".join(str(q) for q in self.qubits)
        return f"{self.gate!r} q[{qubits}]"


class QuantumCircuit:
    """An ordered sequence of gate instructions on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Generic appends
    # ------------------------------------------------------------------
    def append(self, gate: Gate, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append ``gate`` acting on ``qubits``; returns self for chaining."""
        qubits = tuple(int(q) for q in qubits)
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"qubit {qubit} out of range for a {self.num_qubits}-qubit circuit"
                )
        self.instructions.append(Instruction(gate, qubits))
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        """Append already-built instructions."""
        for instruction in instructions:
            self.append(instruction.gate, instruction.qubits)
        return self

    def compose(self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Append another circuit, optionally remapping its qubits."""
        mapping = list(range(other.num_qubits)) if qubits is None else list(qubits)
        if len(mapping) != other.num_qubits:
            raise ValueError("qubit mapping must cover the composed circuit")
        for instruction in other.instructions:
            self.append(instruction.gate, [mapping[q] for q in instruction.qubits])
        return self

    # ------------------------------------------------------------------
    # Named gate helpers
    # ------------------------------------------------------------------
    def id(self, qubit: int) -> "QuantumCircuit":
        """Append an identity gate."""
        return self.append(glib.identity(), [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-X gate."""
        return self.append(glib.x(), [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Y gate."""
        return self.append(glib.y(), [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-Z gate."""
        return self.append(glib.z(), [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        """Append a Hadamard gate."""
        return self.append(glib.h(), [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        """Append an S gate."""
        return self.append(glib.s(), [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Append an S-dagger gate."""
        return self.append(glib.sdg(), [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        """Append a T gate."""
        return self.append(glib.t(), [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """Append a T-dagger gate."""
        return self.append(glib.tdg(), [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        """Append a square-root-of-X gate."""
        return self.append(glib.sx(), [qubit])

    def sxdg(self, qubit: int) -> "QuantumCircuit":
        """Append an adjoint square-root-of-X gate."""
        return self.append(glib.sxdg(), [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append an X rotation."""
        return self.append(glib.rx(theta), [qubit])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Y rotation."""
        return self.append(glib.ry(theta), [qubit])

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Z rotation."""
        return self.append(glib.rz(theta), [qubit])

    def u1(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Append a diagonal phase rotation."""
        return self.append(glib.u1(lam), [qubit])

    def u2(self, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Append a qelib1 U2 gate."""
        return self.append(glib.u2(phi, lam), [qubit])

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Append a general single-qubit rotation."""
        return self.append(glib.u3(theta, phi, lam), [qubit])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Append a CNOT gate."""
        return self.append(glib.cx(), [control, target])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled-Y gate."""
        return self.append(glib.cy(), [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Append a CZ gate."""
        return self.append(glib.cz(), [control, target])

    def cphase(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled-phase gate."""
        return self.append(glib.controlled_phase(theta), [control, target])

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Append a controlled X rotation."""
        return self.append(glib.crx(theta), [control, target])

    def crot(self, theta: float, control: int, target: int, phi: float = 0.0) -> "QuantumCircuit":
        """Append a conditional rotation (CROT) gate."""
        return self.append(glib.crot(theta, phi), [control, target])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Append a SWAP gate."""
        return self.append(glib.swap(), [qubit_a, qubit_b])

    def iswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Append an iSWAP gate."""
        return self.append(glib.iswap(), [qubit_a, qubit_b])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def count_ops(self) -> dict:
        """Return a histogram of gate names."""
        counts: dict = {}
        for instruction in self.instructions:
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    def two_qubit_gate_count(self) -> int:
        """Return the number of multi-qubit gates."""
        return sum(1 for instruction in self.instructions if len(instruction.qubits) >= 2)

    def depth(self) -> int:
        """Return the circuit depth (longest path in gate layers)."""
        frontier = [0] * self.num_qubits
        for instruction in self.instructions:
            layer = max(frontier[q] for q in instruction.qubits) + 1
            for qubit in instruction.qubits:
                frontier[qubit] = layer
        return max(frontier, default=0)

    def qubits_used(self) -> Tuple[int, ...]:
        """Return the sorted tuple of qubits touched by at least one gate."""
        used = set()
        for instruction in self.instructions:
            used.update(instruction.qubits)
        return tuple(sorted(used))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self) -> "QuantumCircuit":
        """Return a shallow copy (instructions are immutable)."""
        duplicate = QuantumCircuit(self.num_qubits, self.name)
        duplicate.instructions = list(self.instructions)
        return duplicate

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (reversed order, adjoint gates)."""
        inverted = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        for instruction in reversed(self.instructions):
            inverted.append(instruction.gate.inverse(), instruction.qubits)
        return inverted

    def remapped(self, mapping: Sequence[int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with qubit ``q`` relabeled to ``mapping[q]``."""
        target_size = num_qubits if num_qubits is not None else self.num_qubits
        remapped = QuantumCircuit(target_size, self.name)
        for instruction in self.instructions:
            remapped.append(instruction.gate, [mapping[q] for q in instruction.qubits])
        return remapped

    # ------------------------------------------------------------------
    # Text rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Return a line-per-instruction plain-text dump of the circuit."""
        lines = [f"circuit {self.name} qubits={self.num_qubits}"]
        for instruction in self.instructions:
            qubits = " ".join(str(q) for q in instruction.qubits)
            if instruction.gate.params:
                params = ",".join(f"{p:.12g}" for p in instruction.gate.params)
                lines.append(f"  {instruction.name}({params}) {qubits}")
            else:
                lines.append(f"  {instruction.name} {qubits}")
        return "\n".join(lines)

    @staticmethod
    def from_text(text: str) -> "QuantumCircuit":
        """Parse the format produced by :meth:`to_text`."""
        lines = [line.strip() for line in text.strip().splitlines() if line.strip()]
        header = lines[0].split()
        if header[0] != "circuit":
            raise ValueError("missing circuit header line")
        num_qubits = int(header[-1].split("=")[1])
        name = header[1] if len(header) > 2 else "circuit"
        circuit = QuantumCircuit(num_qubits, name)
        for line in lines[1:]:
            head, *qubit_tokens = line.split()
            if "(" in head:
                gate_name, param_text = head.split("(", 1)
                params = [float(p) for p in param_text.rstrip(")").split(",") if p]
            else:
                gate_name, params = head, []
            circuit.append(glib.build_gate(gate_name, *params), [int(q) for q in qubit_tokens])
        return circuit

    # ------------------------------------------------------------------
    # Exact serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Exact JSON-serializable form, including custom-gate matrices.

        Unlike :meth:`to_text` (which re-derives gates by name through the
        builder table and rounds parameters for display), this form embeds
        every gate's matrix and round-trips bit-identically through
        :meth:`from_dict` — which is what the persistent result store of
        :mod:`repro.service` requires.
        """
        return {
            "num_qubits": self.num_qubits,
            "name": self.name,
            "instructions": [inst.to_dict() for inst in self.instructions],
        }

    @staticmethod
    def from_dict(payload: dict) -> "QuantumCircuit":
        """Inverse of :meth:`to_dict`."""
        circuit = QuantumCircuit(int(payload["num_qubits"]), payload.get("name", "circuit"))
        for entry in payload["instructions"]:
            instruction = Instruction.from_dict(entry)
            circuit.append(instruction.gate, instruction.qubits)
        return circuit

    def __repr__(self) -> str:
        return f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, gates={len(self)})"
