"""``python -m repro.golden`` — the quality-regression gate CLI.

Examples (from the repository root)::

    python -m repro.golden                         # fast subset, table, exit 1 on regression
    python -m repro.golden --full                  # whole suite x technique matrix
    python -m repro.golden --output BENCH_quality.json
    python -m repro.golden --rebaseline --note "CDCL core landed"
    python -m repro.golden --rebaseline --only rc_adder_n6:sat_p
    python -m repro.golden --option merge_single_qubit_gates=false  # mutation check
    python -m repro.golden --list                  # show the matrix + annotations
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.golden.baseline import GoldenBaseline, GoldenBaselineError, default_baseline_path
from repro.golden.runner import DEFAULT_CELL_TIMEOUT, resolve_cells, run_golden


def _parse_option(spec: str) -> tuple:
    """Parse one ``key=value`` compile-option override (value is JSON)."""
    key, sep, raw = spec.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--option expects key=value, got {spec!r}")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare strings pass through
    return key, value


def _csv(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [item for item in (part.strip() for part in raw.split(",")) if item]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.golden",
        description="Golden-suite solution-quality regression gate.")
    parser.add_argument("--baseline", default=None,
                        help="golden file (default: benchmarks/golden/"
                             "baseline.json, or $REPRO_GOLDEN_BASELINE)")
    parser.add_argument("--full", action="store_true",
                        help="run the full suite x technique matrix "
                             "(default: the fast subset)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated suite benchmarks to run")
    parser.add_argument("--techniques", default=None,
                        help="comma-separated technique keys to run")
    parser.add_argument("--only", action="append", default=None,
                        metavar="BENCH:TECH",
                        help="run exactly this cell (repeatable; wins over "
                             "--full/--benchmarks/--techniques)")
    parser.add_argument("--cell-timeout", type=float,
                        default=DEFAULT_CELL_TIMEOUT, metavar="SECONDS",
                        help="per-cell wall-clock deadline "
                             f"(default {DEFAULT_CELL_TIMEOUT:.0f}s)")
    parser.add_argument("--option", action="append", default=None,
                        type=_parse_option, metavar="KEY=VALUE",
                        help="extra compile option applied to every cell "
                             "(repeatable; JSON values) — the CI mutation "
                             "check passes merge_single_qubit_gates=false")
    parser.add_argument("--rebaseline", action="store_true",
                        help="adopt this run into the golden file "
                             "(deadline hits become expected_timeout "
                             "annotations)")
    parser.add_argument("--retry-timeouts", action="store_true",
                        help="with --rebaseline: re-attempt cells currently "
                             "annotated expected_timeout")
    parser.add_argument("--note", default="",
                        help="provenance note stored with --rebaseline")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the BENCH_quality.json report here")
    parser.add_argument("--list", action="store_true", dest="list_cells",
                        help="list the selected matrix and baseline "
                             "annotations, then exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-cell progress lines")
    args = parser.parse_args(argv)

    baseline_path = args.baseline or default_baseline_path()
    extra_options: Optional[Dict[str, object]] = (
        dict(args.option) if args.option else None)

    if args.list_cells:
        try:
            baseline = GoldenBaseline.load(baseline_path)
        except GoldenBaselineError:
            baseline = GoldenBaseline()
        cells = resolve_cells(benchmarks=_csv(args.benchmarks),
                              techniques=_csv(args.techniques),
                              full=args.full, only=args.only)
        for benchmark, technique in cells:
            flag = ""
            if baseline.is_expected_timeout(benchmark, technique):
                flag = "  [expected_timeout]"
            elif baseline.get(benchmark, technique) is None:
                flag = "  [no baseline entry]"
            print(f"{benchmark}:{technique}{flag}")
        print(f"{len(cells)} cells; baseline: {baseline_path}")
        return 0

    def progress(benchmark: str, technique: str, status: str,
                 seconds: float) -> None:
        if not args.quiet:
            print(f"  {benchmark}:{technique} {status} ({seconds:.2f}s)",
                  flush=True)

    try:
        report = run_golden(
            baseline_path=baseline_path,
            benchmarks=_csv(args.benchmarks),
            techniques=_csv(args.techniques),
            full=args.full,
            only=args.only,
            cell_timeout=args.cell_timeout,
            extra_options=extra_options,
            rebaseline=args.rebaseline,
            retry_timeouts=args.retry_timeouts,
            note=args.note,
            output=args.output,
            progress=progress,
        )
    except (GoldenBaselineError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(report.table())
    print(report.summary_line())
    if args.rebaseline:
        print(f"rebaselined {len(report.records)} cells into "
              f"{baseline_path}")
    if args.output:
        print(f"wrote {args.output}")
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
