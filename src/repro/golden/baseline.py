"""The golden baseline file and the quality comparison engine.

A *golden baseline* is a checked-in JSON file
(``benchmarks/golden/baseline.json``) recording, for every
suite-benchmark × technique cell, the expected
:class:`repro.golden.metrics.QualityRecord` plus optional per-metric
tolerance overrides — or an ``expected_timeout`` annotation for cells
that are known-infeasible in the pure-Python solvers (the Cuccaro adder
under the OMT techniques, the 8-qubit QFT under every SMT key).  The
annotation lives *here*, not in test files: the harness owns which cells
are skipped, and everything else (the slow suite sweep, the golden
runner itself) asks the baseline.

The comparison engine turns a fresh record plus a baseline entry into a
typed :class:`CellVerdict`:

``improved``
    at least one metric moved past its tolerance in the good direction
    and none moved in the bad one;
``within``
    every metric inside its tolerance band (boundary inclusive);
``regressed``
    any metric worse than baseline by more than its tolerance — or a
    non-finite value where the baseline was finite;
``new``
    the cell has no baseline entry (informational; rebaseline to adopt);
``missing``
    the baseline has an entry but the run produced no record (compile
    error, or an unexpected deadline);
``skipped``
    the cell is ``expected_timeout``-annotated and was not attempted.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.golden.metrics import (
    METRIC_NAMES,
    METRIC_SPECS,
    QualityRecord,
    stable_float,
)

#: Verdict statuses that make a golden run fail.
FAILING_STATUSES = ("regressed", "missing")


class GoldenBaselineError(ValueError):
    """The golden baseline file is malformed or missing."""


@dataclass(frozen=True)
class Tolerance:
    """Per-metric comparison slack: ``max(abs, |baseline| * rel)``."""

    abs: float = 0.0
    rel: float = 0.0

    def slack(self, baseline: float) -> float:
        return max(self.abs, abs(baseline) * self.rel)


def default_tolerance(metric: str) -> Tolerance:
    spec = METRIC_SPECS.get(metric)
    if spec is None:
        return Tolerance()
    return Tolerance(abs=spec.abs_tol, rel=spec.rel_tol)


@dataclass
class BaselineEntry:
    """One benchmark × technique cell of the golden file."""

    benchmark: str
    technique: str
    metrics: Dict[str, float] = field(default_factory=dict)
    solver: Dict[str, object] = field(default_factory=dict)
    #: The cell is known-infeasible: the runner (and the slow suite
    #: sweep) skip it instead of compiling.
    expected_timeout: bool = False
    #: Free-form provenance (why rebaselined / why annotated).
    note: str = ""
    #: Per-metric tolerance overrides, ``{metric: {"abs": .., "rel": ..}}``.
    tolerances: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.benchmark}:{self.technique}"

    def tolerance(self, metric: str) -> Tolerance:
        override = self.tolerances.get(metric)
        if override is None:
            return default_tolerance(metric)
        base = default_tolerance(metric)
        return Tolerance(abs=float(override.get("abs", base.abs)),
                         rel=float(override.get("rel", base.rel)))

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "benchmark": self.benchmark,
            "technique": self.technique,
        }
        if self.expected_timeout:
            payload["expected_timeout"] = True
        else:
            payload["metrics"] = {name: self.metrics[name]
                                  for name in METRIC_NAMES
                                  if name in self.metrics}
            if self.solver:
                payload["solver"] = dict(self.solver)
        if self.note:
            payload["note"] = self.note
        if self.tolerances:
            payload["tolerances"] = {
                metric: dict(override)
                for metric, override in sorted(self.tolerances.items())
            }
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "BaselineEntry":
        return BaselineEntry(
            benchmark=str(payload["benchmark"]),
            technique=str(payload["technique"]),
            metrics={str(k): float(v)
                     for k, v in dict(payload.get("metrics", {})).items()},
            solver=dict(payload.get("solver", {})),
            expected_timeout=bool(payload.get("expected_timeout", False)),
            note=str(payload.get("note", "")),
            tolerances={str(m): {str(k): float(v) for k, v in dict(o).items()}
                        for m, o in dict(payload.get("tolerances", {})).items()},
        )


@dataclass
class GoldenBaseline:
    """The full golden file: cells plus file-level provenance."""

    entries: Dict[Tuple[str, str], BaselineEntry] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)

    def get(self, benchmark: str, technique: str) -> Optional[BaselineEntry]:
        return self.entries.get((benchmark, technique))

    def set(self, entry: BaselineEntry) -> None:
        self.entries[(entry.benchmark, entry.technique)] = entry

    def is_expected_timeout(self, benchmark: str, technique: str) -> bool:
        entry = self.get(benchmark, technique)
        return entry is not None and entry.expected_timeout

    def expected_timeout_cells(self) -> List[Tuple[str, str]]:
        """All ``(benchmark, technique)`` cells annotated infeasible."""
        return sorted(key for key, entry in self.entries.items()
                      if entry.expected_timeout)

    def benchmarks(self) -> List[str]:
        return sorted({benchmark for benchmark, _ in self.entries})

    def techniques(self) -> List[str]:
        return sorted({technique for _, technique in self.entries})

    def to_dict(self) -> Dict[str, object]:
        return {
            "provenance": dict(self.provenance),
            "cells": {
                entry.key: entry.to_dict()
                for entry in sorted(self.entries.values(),
                                    key=lambda e: (e.benchmark, e.technique))
            },
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "GoldenBaseline":
        cells = payload.get("cells")
        if not isinstance(cells, dict):
            raise GoldenBaselineError("golden file has no 'cells' object")
        baseline = GoldenBaseline(provenance=dict(payload.get("provenance", {})))
        for key, cell in cells.items():
            entry = BaselineEntry.from_dict(cell)
            if entry.key != key:
                raise GoldenBaselineError(
                    f"cell key {key!r} disagrees with its payload "
                    f"({entry.key!r})")
            baseline.set(entry)
        return baseline

    def save(self, path: str) -> None:
        """Write the golden file (sorted keys, trailing newline, atomic)."""
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        tmp = f"{path}.tmp"
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp, "w") as handle:
            handle.write(payload)
        os.replace(tmp, path)

    @staticmethod
    def load(path: str) -> "GoldenBaseline":
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise GoldenBaselineError(
                f"no golden baseline at {path!r}; create one with "
                "'python -m repro.golden --rebaseline'") from None
        except json.JSONDecodeError as error:
            raise GoldenBaselineError(
                f"golden baseline {path!r} is not valid JSON: {error}"
            ) from None
        return GoldenBaseline.from_dict(payload)


def default_baseline_path() -> str:
    """Locate ``benchmarks/golden/baseline.json``.

    Resolution order: the ``REPRO_GOLDEN_BASELINE`` environment variable,
    the current working directory's ``benchmarks/golden/baseline.json``,
    then the repository the package was installed from in editable mode
    (three levels up from this file).  The last existing candidate wins;
    when none exists the repo-relative path is returned so error messages
    and ``--rebaseline`` have a sensible target.
    """
    env = os.environ.get("REPRO_GOLDEN_BASELINE")
    if env:
        return env
    candidates = [
        os.path.join(os.getcwd(), "benchmarks", "golden", "baseline.json"),
        os.path.abspath(os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, os.pardir,
            "benchmarks", "golden", "baseline.json")),
    ]
    for candidate in candidates:
        if os.path.exists(candidate):
            return candidate
    return candidates[-1]


# ---------------------------------------------------------------------------
# Comparison engine
# ---------------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric of one cell, compared against its baseline value."""

    metric: str
    baseline: float
    actual: float
    status: str  # "improved" | "within" | "regressed"
    #: Signed worsening (positive = worse), in the metric's own units.
    worse_by: float
    #: ``worse_by`` relative to the baseline magnitude (0 when undefined).
    rel_worse_by: float
    reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "baseline": _json_float(self.baseline),
            "actual": _json_float(self.actual),
            "status": self.status,
            "worse_by": _json_float(self.worse_by),
            "rel_worse_by": _json_float(self.rel_worse_by),
            "reason": self.reason,
        }


@dataclass
class CellVerdict:
    """The typed outcome of one benchmark × technique comparison."""

    benchmark: str
    technique: str
    status: str  # improved | within | regressed | new | missing | skipped
    deltas: List[MetricDelta] = field(default_factory=list)
    reason: str = ""

    @property
    def key(self) -> str:
        return f"{self.benchmark}:{self.technique}"

    @property
    def failing(self) -> bool:
        return self.status in FAILING_STATUSES

    def regressed_metrics(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if delta.status == "regressed"]

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "technique": self.technique,
            "status": self.status,
            "reason": self.reason,
            "deltas": [delta.to_dict() for delta in self.deltas],
        }


def _json_float(value: float) -> object:
    """JSON-safe float (inf/nan degrade to strings)."""
    if value != value:
        return "nan"
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return value


def compare_metric(metric: str, baseline: float, actual: float,
                   tolerance: Optional[Tolerance] = None) -> MetricDelta:
    """Compare one metric value against its baseline.

    The tolerance band is inclusive: a worsening of exactly the allowed
    slack is still ``within`` (the boundary belongs to the passing side).
    Non-finite values never pass silently: a NaN on either side is a
    regression, a worse-direction infinity is a regression, and a finite
    actual against a non-finite baseline is an improvement.
    """
    spec = METRIC_SPECS.get(metric)
    direction = spec.direction if spec is not None else "lower"
    if tolerance is None:
        tolerance = default_tolerance(metric)
    sign = 1.0 if direction == "lower" else -1.0

    if math.isnan(baseline) or math.isnan(actual):
        return MetricDelta(metric, baseline, actual, "regressed",
                           worse_by=float("nan"), rel_worse_by=float("nan"),
                           reason="NaN metric value")
    if math.isinf(baseline) or math.isinf(actual):
        if baseline == actual:
            return MetricDelta(metric, baseline, actual, "within",
                               worse_by=0.0, rel_worse_by=0.0,
                               reason="both values infinite")
        worse = sign * (actual - baseline)  # inf arithmetic gives ±inf
        status = "regressed" if worse > 0 else "improved"
        reason = ("non-finite actual value" if math.isinf(actual)
                  else "baseline was non-finite")
        return MetricDelta(metric, baseline, actual, status,
                           worse_by=worse, rel_worse_by=worse, reason=reason)

    worse_by = sign * (actual - baseline)
    slack = tolerance.slack(baseline)
    if worse_by > slack:
        status = "regressed"
    elif worse_by < -slack:
        status = "improved"
    else:
        status = "within"
    rel = worse_by / abs(baseline) if baseline != 0 else (
        0.0 if worse_by == 0 else math.copysign(float("inf"), worse_by))
    return MetricDelta(metric, baseline, actual, status,
                       worse_by=worse_by, rel_worse_by=rel)


def compare_record(record: QualityRecord,
                   entry: BaselineEntry) -> CellVerdict:
    """Compare a fresh quality record against its baseline entry."""
    deltas: List[MetricDelta] = []
    regressed = improved = 0
    for metric in METRIC_NAMES:
        if metric not in entry.metrics:
            continue  # baseline predates this metric: nothing to gate
        baseline_value = entry.metrics[metric]
        actual = record.metrics.get(metric)
        if actual is None:
            delta = MetricDelta(metric, baseline_value, float("nan"),
                                "regressed", worse_by=float("nan"),
                                rel_worse_by=float("nan"),
                                reason="metric missing from the run")
        else:
            delta = compare_metric(metric, baseline_value, actual,
                                   entry.tolerance(metric))
        deltas.append(delta)
        if delta.status == "regressed":
            regressed += 1
        elif delta.status == "improved":
            improved += 1
    if regressed:
        status = "regressed"
    elif improved:
        status = "improved"
    else:
        status = "within"
    return CellVerdict(record.benchmark, record.technique, status, deltas)


@dataclass
class ComparisonResult:
    """All verdicts of one golden run, plus the aggregates CI gates on."""

    verdicts: List[CellVerdict] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in
                  ("improved", "within", "regressed", "new", "missing",
                   "skipped")}
        for verdict in self.verdicts:
            counts[verdict.status] = counts.get(verdict.status, 0) + 1
        return counts

    @property
    def failed(self) -> bool:
        return any(verdict.failing for verdict in self.verdicts)

    def worst_regression(self) -> Optional[Dict[str, object]]:
        """The single worst regressed metric across all cells (by relative
        worsening, NaN-poisoned deltas first)."""
        worst: Optional[Tuple[float, CellVerdict, MetricDelta]] = None
        for verdict in self.verdicts:
            for delta in verdict.regressed_metrics():
                magnitude = delta.rel_worse_by
                rank = float("inf") if magnitude != magnitude else magnitude
                if worst is None or rank > worst[0]:
                    worst = (rank, verdict, delta)
        if worst is None:
            return None
        _, verdict, delta = worst
        return {
            "benchmark": verdict.benchmark,
            "technique": verdict.technique,
            **delta.to_dict(),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "counts": self.counts,
            "failed": self.failed,
            "worst_regression": self.worst_regression(),
            "cells": [verdict.to_dict() for verdict in self.verdicts],
        }


def compare_run(records: Iterable[QualityRecord], baseline: GoldenBaseline,
                expected: Iterable[Tuple[str, str]] = (),
                errors: Optional[Mapping[Tuple[str, str], str]] = None,
                ) -> ComparisonResult:
    """Compare a run's records against the baseline.

    ``expected`` lists the cells the run *attempted* (so baseline entries
    whose compile crashed or blew an unexpected deadline are reported as
    ``missing`` rather than silently ignored); ``errors`` carries the
    per-cell failure reasons.  Cells annotated ``expected_timeout`` in
    the baseline come back as ``skipped``.
    """
    errors = dict(errors or {})
    result = ComparisonResult()
    seen = set()
    for record in records:
        cell = (record.benchmark, record.technique)
        seen.add(cell)
        entry = baseline.get(*cell)
        if entry is None:
            result.verdicts.append(CellVerdict(
                record.benchmark, record.technique, "new",
                reason="no baseline entry; rebaseline to adopt this cell"))
        elif entry.expected_timeout:
            result.verdicts.append(CellVerdict(
                record.benchmark, record.technique, "improved",
                reason="cell was annotated expected_timeout but completed; "
                       "rebaseline to adopt its metrics"))
        else:
            result.verdicts.append(compare_record(record, entry))
    for cell in expected:
        if cell in seen:
            continue
        seen.add(cell)
        benchmark, technique = cell
        if baseline.is_expected_timeout(benchmark, technique):
            result.verdicts.append(CellVerdict(
                benchmark, technique, "skipped",
                reason="expected_timeout annotation in the golden baseline"))
        else:
            result.verdicts.append(CellVerdict(
                benchmark, technique, "missing",
                reason=errors.get(cell, "cell produced no quality record")))
    result.verdicts.sort(key=lambda v: (v.benchmark, v.technique))
    return result


def make_entry(record: QualityRecord, note: str = "") -> BaselineEntry:
    """A baseline entry adopting a fresh record's metrics verbatim."""
    return BaselineEntry(
        benchmark=record.benchmark,
        technique=record.technique,
        metrics={name: stable_float(value)
                 for name, value in record.metrics.items()},
        solver=dict(record.solver),
        note=note,
    )


def make_timeout_entry(benchmark: str, technique: str,
                       note: str = "") -> BaselineEntry:
    """A baseline entry annotating a cell as known-infeasible."""
    return BaselineEntry(benchmark=benchmark, technique=technique,
                         expected_timeout=True, note=note)
