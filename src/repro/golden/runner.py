"""The golden-suite quality runner: compile, compare, gate.

``run_golden()`` compiles a benchmark × technique matrix from the
bundled suite (:mod:`repro.interop.suite`), distills every result into a
:class:`repro.golden.metrics.QualityRecord`, compares the records
against the checked-in golden baseline and returns a
:class:`GoldenRunReport` — regressions (and baseline cells that failed
to produce a record) make ``exit_code`` nonzero, which is exactly what
the CI ``golden-smoke`` job gates on.

Two matrices exist:

* the **fast subset** (default): a handful of cheap benchmarks through
  all 8 techniques, done in seconds — the tier the CLI, the example and
  CI run on every change;
* the **full matrix** (``--full``): every suite benchmark × every
  technique, minus the cells the baseline annotates
  ``expected_timeout`` — slow-marked in the test suite.

Every compiled cell runs with pinned options (``max_improvement_rounds``
for the SMT keys) and a per-cell wall-clock deadline so one pathological
solver run cannot hang the gate; a cell that blows an *unexpected*
deadline reports as ``missing`` (a failure), while ``--rebaseline``
turns fresh deadline hits into ``expected_timeout`` annotations with
provenance.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.golden.baseline import (
    ComparisonResult,
    GoldenBaseline,
    compare_run,
    default_baseline_path,
    make_entry,
    make_timeout_entry,
)
from repro.golden.metrics import QualityRecord, extract_quality

Cell = Tuple[str, str]

#: Options pinned on *every* golden cell.  Single-qubit merging is
#: deliberately on (its default is off): golden numbers measure the
#: best-practice pipeline, and the CI mutation check proves the gate
#: works by overriding it back off and watching gate counts regress.
GOLDEN_COMMON_OPTIONS: Dict[str, object] = {"merge_single_qubit_gates": True}

#: Options pinned on every SMT-technique golden cell (the same cap the
#: slow suite sweep uses): golden numbers must not depend on the mutable
#: production default or the test fixtures.
SMT_GOLDEN_OPTIONS: Dict[str, object] = {"max_improvement_rounds": 10}

#: Wall-clock budget per cell.  Generous against the slowest known-good
#: cell (~1 min) yet small enough that a wedged solver fails the run
#: instead of hanging it.
DEFAULT_CELL_TIMEOUT = 150.0

#: Fast-subset benchmarks: cheap under every technique.
FAST_BENCHMARKS: Tuple[str, ...] = (
    "bv_n5", "clifford_s11_n4", "ghz_n5", "qaoa_n4", "teleport_n3",
    "toffoli_n3", "vqe_hwe_n4", "wstate_n3",
)

#: Fast-subset techniques applied to every fast benchmark (sub-second).
FAST_TECHNIQUES: Tuple[str, ...] = (
    "direct", "kak_cz", "kak_dcz", "template_f", "template_r",
)

#: Fast-subset SMT cells (seconds each; keeps all 8 keys covered).
FAST_SMT_CELLS: Tuple[Cell, ...] = (
    ("toffoli_n3", "sat_f"),
    ("toffoli_n3", "sat_r"),
    ("toffoli_n3", "sat_p"),
    ("vqe_hwe_n4", "sat_f"),
    ("vqe_hwe_n4", "sat_r"),
    ("vqe_hwe_n4", "sat_p"),
)

#: The last completed run of this process (feeds ``quality_summary``).
_LAST_RUN: Optional[Dict[str, object]] = None


def golden_options(technique: str,
                   extra: Optional[Mapping[str, object]] = None
                   ) -> Dict[str, object]:
    """The pinned compile options of one golden cell."""
    options: Dict[str, object] = dict(GOLDEN_COMMON_OPTIONS)
    if technique.startswith("sat_"):
        options.update(SMT_GOLDEN_OPTIONS)
    if extra:
        options.update(extra)
    return options


def fast_cells() -> List[Cell]:
    """The default (fast) benchmark × technique subset."""
    cells = [(benchmark, technique)
             for benchmark in FAST_BENCHMARKS
             for technique in FAST_TECHNIQUES]
    cells.extend(FAST_SMT_CELLS)
    return sorted(cells)


def full_cells() -> List[Cell]:
    """Every suite benchmark × every paper technique."""
    from repro.api import PAPER_TECHNIQUES
    from repro.interop import suite_names

    return [(benchmark, technique)
            for benchmark in suite_names()
            for technique in PAPER_TECHNIQUES]


def resolve_cells(benchmarks: Optional[Sequence[str]] = None,
                  techniques: Optional[Sequence[str]] = None,
                  full: bool = False,
                  only: Optional[Sequence[str]] = None) -> List[Cell]:
    """Resolve the requested matrix into concrete cells.

    ``benchmarks``/``techniques`` override one axis of the matrix (the
    other defaults to the full suite / all techniques).  ``only`` names
    explicit ``benchmark:technique`` cells and wins over everything else
    (so ``--rebaseline --only rc_adder_n6:sat_p`` touches exactly that
    cell regardless of the ambient matrix).
    """
    from repro.api import PAPER_TECHNIQUES, resolve_technique
    from repro.interop import load_suite, suite_names

    if only:
        cells = []
        for spec in only:
            benchmark, sep, technique = spec.partition(":")
            if not sep or not benchmark or not technique:
                raise ValueError(
                    f"--only expects 'benchmark:technique', got {spec!r}")
            load_suite([benchmark])  # validate both halves early
            cells.append((benchmark, resolve_technique(technique).key))
        return sorted(set(cells))
    if benchmarks is None and techniques is None and not full:
        cells = fast_cells()
    else:
        chosen_benchmarks = list(benchmarks) if benchmarks else suite_names()
        load_suite(chosen_benchmarks)  # validate names early
        chosen_techniques = (list(techniques) if techniques
                             else list(PAPER_TECHNIQUES))
        cells = [(b, t) for b in chosen_benchmarks for t in chosen_techniques]
    return sorted(set(cells))


@dataclass
class GoldenRunReport:
    """Everything one golden run produced (the ``BENCH_quality.json``)."""

    mode: str
    baseline_path: str
    comparison: ComparisonResult
    records: List[QualityRecord] = field(default_factory=list)
    errors: Dict[Cell, str] = field(default_factory=dict)
    cell_timeout: float = DEFAULT_CELL_TIMEOUT
    extra_options: Dict[str, object] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    rebaselined: bool = False

    @property
    def exit_code(self) -> int:
        return 1 if self.comparison.failed else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "mode": self.mode,
            "baseline": self.baseline_path,
            "cell_timeout_seconds": self.cell_timeout,
            "common_options": dict(GOLDEN_COMMON_OPTIONS),
            "smt_options": dict(SMT_GOLDEN_OPTIONS),
            "extra_options": dict(self.extra_options),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "rebaselined": self.rebaselined,
            **self.comparison.to_dict(),
            "records": [record.to_dict() for record in self.records],
        }

    def summary_line(self) -> str:
        counts = self.comparison.counts
        rendered = ", ".join(f"{count} {status}"
                             for status, count in counts.items() if count)
        verdict = "FAIL" if self.comparison.failed else "OK"
        return (f"golden {verdict}: {rendered or 'no cells'} "
                f"({self.elapsed_seconds:.1f}s)")

    def table(self) -> str:
        """An aligned per-cell verdict table (worst metric inlined)."""
        lines = [f"{'benchmark':<18} {'technique':<11} {'verdict':<10} detail"]
        for verdict in self.comparison.verdicts:
            detail = verdict.reason
            regressed = verdict.regressed_metrics()
            deltas = regressed or [d for d in verdict.deltas
                                   if d.status == "improved"]
            if deltas:
                worst = max(deltas, key=lambda d: (d.rel_worse_by
                                                   if d.rel_worse_by ==
                                                   d.rel_worse_by else
                                                   float("inf")))
                detail = (f"{worst.metric} {worst.baseline:g} -> "
                          f"{worst.actual:g} "
                          f"({'+' if worst.worse_by >= 0 else ''}"
                          f"{worst.worse_by:g} worse)"
                          if worst.status == "regressed" else
                          f"{worst.metric} {worst.baseline:g} -> "
                          f"{worst.actual:g} ({-worst.worse_by:g} better)")
            lines.append(f"{verdict.benchmark:<18} {verdict.technique:<11} "
                         f"{verdict.status:<10} {detail}")
        worst = self.comparison.worst_regression()
        if worst is not None:
            lines.append(
                f"worst regression: {worst['benchmark']}:{worst['technique']} "
                f"{worst['metric']} {worst['baseline']} -> {worst['actual']}")
        return "\n".join(lines)


def _compile_cell(benchmark: str, technique: str, cell_timeout: float,
                  extra_options: Optional[Mapping[str, object]]
                  ) -> QualityRecord:
    """Compile one cell under its pinned options and per-cell deadline."""
    import repro
    from repro.hardware import spin_qubit_target
    from repro.interop import load_suite

    entry = load_suite([benchmark])[0]
    circuit = entry.circuit()
    target = spin_qubit_target(max(2, circuit.num_qubits))
    options = golden_options(technique, extra_options)
    result = repro.compile(circuit, target, technique, use_cache=False,
                           timeout=cell_timeout, on_deadline="raise",
                           **options)
    return extract_quality(result, benchmark=benchmark)


def run_golden(baseline_path: Optional[str] = None,
               benchmarks: Optional[Sequence[str]] = None,
               techniques: Optional[Sequence[str]] = None,
               full: bool = False,
               only: Optional[Sequence[str]] = None,
               cell_timeout: float = DEFAULT_CELL_TIMEOUT,
               extra_options: Optional[Mapping[str, object]] = None,
               rebaseline: bool = False,
               retry_timeouts: bool = False,
               note: str = "",
               output: Optional[str] = None,
               progress=None) -> GoldenRunReport:
    """Run the golden quality matrix; optionally adopt it as the baseline.

    Parameters
    ----------
    baseline_path:
        The golden file (default: ``benchmarks/golden/baseline.json``
        resolved via :func:`default_baseline_path`).
    benchmarks, techniques, full, only:
        Matrix selection — see :func:`resolve_cells`.
    cell_timeout:
        Per-cell wall-clock deadline in seconds.
    extra_options:
        Extra compile options applied to *every* cell (the CI mutation
        check uses ``{"merge_single_qubit_gates": False}`` to prove a
        deliberate quality regression fails the gate).
    rebaseline:
        Adopt the run: completed cells overwrite their baseline entries,
        deadline hits become ``expected_timeout`` annotations, and the
        file is saved with a provenance ``note``.  Cells already
        annotated ``expected_timeout`` are kept (not re-run) unless
        ``retry_timeouts`` is set.
    output:
        Path of the ``BENCH_quality.json`` report to write (omitted =
        no file).
    progress:
        Optional callable invoked as ``progress(benchmark, technique,
        status, seconds)`` after each cell (the CLI prints from it).

    Returns
    -------
    GoldenRunReport
        ``report.exit_code`` is nonzero when any cell regressed or went
        missing.
    """
    from repro.resilience import CompileDeadlineExceeded
    from repro.trace.tracer import current_tracer

    if baseline_path is None:
        baseline_path = default_baseline_path()
    if rebaseline and os.path.exists(baseline_path):
        baseline = GoldenBaseline.load(baseline_path)
    elif rebaseline:
        baseline = GoldenBaseline()
    else:
        baseline = GoldenBaseline.load(baseline_path)

    cells = resolve_cells(benchmarks=benchmarks, techniques=techniques,
                          full=full, only=only)
    attempted: List[Cell] = []
    skipped: List[Cell] = []
    for cell in cells:
        if baseline.is_expected_timeout(*cell) and not (rebaseline and
                                                        retry_timeouts):
            skipped.append(cell)
        else:
            attempted.append(cell)

    tracer = current_tracer()
    mode = "full" if full else (
        "custom" if only or benchmarks or techniques else "fast")
    token = tracer.begin("golden.run", "golden", mode=mode,
                         cells=len(cells), rebaseline=rebaseline)
    records: List[QualityRecord] = []
    errors: Dict[Cell, str] = {}
    deadline_hits: List[Cell] = []
    started = time.perf_counter()
    try:
        for benchmark, technique in attempted:
            cell_started = time.perf_counter()
            try:
                record = _compile_cell(benchmark, technique, cell_timeout,
                                       extra_options)
            except CompileDeadlineExceeded as error:
                deadline_hits.append((benchmark, technique))
                errors[(benchmark, technique)] = (
                    f"deadline exceeded after {cell_timeout:.0f}s "
                    f"(checkpoint: {error.checkpoint})")
                status = "timeout"
            except Exception as error:  # noqa: BLE001 - reported per cell
                errors[(benchmark, technique)] = (
                    f"{type(error).__name__}: {error}")
                status = "error"
            else:
                records.append(record)
                status = "compiled"
            seconds = time.perf_counter() - cell_started
            tracer.event("golden.cell", "golden", benchmark=benchmark,
                         technique=technique, status=status,
                         seconds=seconds)
            if progress is not None:
                progress(benchmark, technique, status, seconds)

        if rebaseline:
            stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
            for record in records:
                baseline.set(make_entry(record, note=note))
            for benchmark, technique in deadline_hits:
                baseline.set(make_timeout_entry(
                    benchmark, technique,
                    note=note or f"deadline exceeded at "
                                 f"{cell_timeout:.0f}s on {stamp}"))
            baseline.provenance = {
                "updated_at": stamp,
                "note": note,
                "cell_timeout_seconds": cell_timeout,
                "common_options": dict(GOLDEN_COMMON_OPTIONS),
                "smt_options": dict(SMT_GOLDEN_OPTIONS),
                "tool": f"python -m repro.golden --rebaseline "
                        f"(repro {_version()})",
            }
            baseline.save(baseline_path)

        comparison = compare_run(records, baseline,
                                 expected=attempted + skipped,
                                 errors=errors)
        for verdict in comparison.verdicts:
            regressed = verdict.regressed_metrics()
            tracer.event("golden.check", "golden",
                         benchmark=verdict.benchmark,
                         technique=verdict.technique,
                         status=verdict.status,
                         regressed_metrics=[d.metric for d in regressed])
        report = GoldenRunReport(
            mode=mode,
            baseline_path=baseline_path,
            comparison=comparison,
            records=records,
            errors=errors,
            cell_timeout=cell_timeout,
            extra_options=dict(extra_options or {}),
            elapsed_seconds=time.perf_counter() - started,
            rebaselined=rebaseline,
        )
    finally:
        tracer.end(token)

    if output:
        payload = report.to_dict()
        directory = os.path.dirname(os.path.abspath(output))
        os.makedirs(directory, exist_ok=True)
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    _remember_run(report)
    return report


def _version() -> str:
    import repro

    return getattr(repro, "__version__", "unknown")


# ---------------------------------------------------------------------------
# Quality surface for /metrics
# ---------------------------------------------------------------------------
def _remember_run(report: GoldenRunReport) -> None:
    global _LAST_RUN
    _LAST_RUN = {
        "status": "ok",
        "source": "in-process",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": report.mode,
        "failed": report.comparison.failed,
        "counts": report.comparison.counts,
        "worst_regression": report.comparison.worst_regression(),
    }


def quality_summary() -> Dict[str, object]:
    """The ``"quality"`` block of the gateway's ``GET /metrics``.

    Prefers the last golden run of this process; otherwise reads the
    report named by ``REPRO_QUALITY_REPORT`` (or ``BENCH_quality.json``
    in the working directory).  Never raises: a gateway without quality
    data reports ``{"status": "unavailable"}`` rather than breaking its
    metrics endpoint.
    """
    if _LAST_RUN is not None:
        return dict(_LAST_RUN)
    path = os.environ.get("REPRO_QUALITY_REPORT") or os.path.join(
        os.getcwd(), "BENCH_quality.json")
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {"status": "unavailable",
                "reason": "no golden run in this process and no readable "
                          f"quality report at {path!r}"}
    return {
        "status": "ok",
        "source": path,
        "generated_at": payload.get("generated_at"),
        "mode": payload.get("mode"),
        "failed": payload.get("failed"),
        "counts": payload.get("counts"),
        "worst_regression": payload.get("worst_regression"),
    }


def reset_quality_state() -> None:
    """Forget the in-process last run (tests)."""
    global _LAST_RUN
    _LAST_RUN = None
