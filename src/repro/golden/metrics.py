"""Canonical solution-quality records extracted from compilation results.

The perf harness (``BENCH_perf.json``) tracks *speed*; this module is the
quality half: for every compiled benchmark it distills the metrics the
paper actually optimizes — gate counts, depth, schedule duration,
fidelity, the combined cost — into one JSON-stable
:class:`QualityRecord`.  Records are what the golden baseline
(:mod:`repro.golden.baseline`) stores and what the runner compares
against it.

JSON stability matters because records are diffed and checked in: every
float is normalized to 12 significant digits (far below any tolerance,
far above double noise), so ``to_dict`` → ``json`` → ``from_dict`` is an
exact round trip and a re-run on the same tree produces a byte-identical
baseline file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


@dataclass(frozen=True)
class MetricSpec:
    """How one quality metric is extracted and compared.

    ``direction`` says which way is better (``"lower"`` for costs,
    ``"higher"`` for fidelities); ``abs_tol``/``rel_tol`` are the default
    slack applied by the comparison engine before a worsening counts as a
    regression.  Integer metrics default to zero slack: any count
    increase is a regression.
    """

    name: str
    direction: str  # "lower" | "higher"
    abs_tol: float = 0.0
    rel_tol: float = 0.0
    integer: bool = False

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise ValueError(f"direction must be 'lower' or 'higher', "
                             f"got {self.direction!r}")


#: The gated quality metrics, in report order.  Float tolerances absorb
#: libm last-ulp drift across platforms/Python builds; they are orders of
#: magnitude below any real quality change.
QUALITY_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("gate_count", "lower", integer=True),
    MetricSpec("two_qubit_gate_count", "lower", integer=True),
    MetricSpec("depth", "lower", integer=True),
    MetricSpec("duration", "lower", abs_tol=1e-6, rel_tol=1e-6),
    MetricSpec("total_idle_time", "lower", abs_tol=1e-6, rel_tol=1e-6),
    MetricSpec("gate_fidelity_product", "higher", abs_tol=1e-9, rel_tol=1e-6),
    MetricSpec("combined_score", "higher", abs_tol=1e-9, rel_tol=1e-6),
)

METRIC_SPECS: Dict[str, MetricSpec] = {spec.name: spec for spec in QUALITY_METRICS}

#: Order in which metrics appear in records, tables and delta lists.
METRIC_NAMES: Tuple[str, ...] = tuple(spec.name for spec in QUALITY_METRICS)


def stable_float(value: float) -> float:
    """Normalize a float to 12 significant digits (JSON-stable)."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return value
    return float(f"{value:.12g}")


@dataclass
class QualityRecord:
    """The solution-quality snapshot of one benchmark × technique cell.

    ``metrics`` holds the gated values (one per :data:`QUALITY_METRICS`
    entry); ``solver`` is an informational digest of the deterministic
    solver/selection counters (never gated — it explains *why* a metric
    moved, it does not fail runs by itself).
    """

    benchmark: str
    technique: str
    metrics: Dict[str, float] = field(default_factory=dict)
    solver: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form; metric floats round-trip exactly."""
        return {
            "benchmark": self.benchmark,
            "technique": self.technique,
            "metrics": {name: self.metrics[name] for name in METRIC_NAMES
                        if name in self.metrics},
            "solver": dict(self.solver),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "QualityRecord":
        """Inverse of :meth:`to_dict`."""
        return QualityRecord(
            benchmark=str(payload["benchmark"]),
            technique=str(payload["technique"]),
            metrics={str(k): float(v)
                     for k, v in dict(payload.get("metrics", {})).items()},
            solver=dict(payload.get("solver", {})),
        )


def _solver_digest(statistics: Mapping[str, object]) -> Dict[str, object]:
    """The deterministic, JSON-safe subset of the solver statistics."""
    digest: Dict[str, object] = {}
    for key in sorted(statistics):
        value = statistics[key]
        if isinstance(value, bool) or isinstance(value, int):
            digest[key] = int(value)
        elif isinstance(value, str):
            digest[key] = value
        # Floats (and anything exotic) are dropped: solver float stats
        # tend to be derived timings, which are not reproducible.
    return digest


def extract_quality(result, benchmark: Optional[str] = None) -> QualityRecord:
    """Distill an :class:`repro.core.AdaptationResult` into a record.

    ``benchmark`` overrides the record's benchmark name (the adapted
    circuit's name is used otherwise).  The technique is taken from the
    result's report when present — for degraded results that is the
    technique that actually produced the circuit.
    """
    cost = result.cost
    circuit = result.adapted_circuit
    technique = result.technique
    if result.report is not None:
        technique = result.report.technique
    metrics = {
        "gate_count": float(cost.gate_count),
        "two_qubit_gate_count": float(cost.two_qubit_gate_count),
        "depth": float(circuit.depth()),
        "duration": stable_float(cost.duration),
        "total_idle_time": stable_float(cost.total_idle_time),
        "gate_fidelity_product": stable_float(cost.gate_fidelity_product),
        "combined_score": stable_float(cost.combined_score),
    }
    return QualityRecord(
        benchmark=benchmark if benchmark is not None else circuit.name,
        technique=technique,
        metrics=metrics,
        solver=_solver_digest(result.statistics or {}),
    )
