"""Solution-quality regression harness with golden baselines.

The stack's perf harness tracks *speed*; this package tracks the
quantity the paper optimizes — *solution quality*.  It extracts a
canonical :class:`QualityRecord` (gates, 2q count, depth, duration,
fidelity, combined cost, solver digest) from every compilation result,
compares records against a checked-in golden baseline
(``benchmarks/golden/baseline.json``) with per-metric tolerances, and
gates CI on the typed verdicts: a PR that silently worsens routing or
scheduling cost fails the same way a crash does.

Entry points::

    python -m repro.golden                 # fast subset vs the baseline
    python -m repro.golden --full          # the whole suite x technique matrix
    python -m repro.golden --rebaseline    # deliberately adopt the current tree

See :mod:`repro.golden.runner` for the library API (:func:`run_golden`)
and :func:`quality_summary` for the ``"quality"`` block served by the
HTTP gateway's ``GET /metrics``.
"""

from repro.golden.baseline import (
    FAILING_STATUSES,
    BaselineEntry,
    CellVerdict,
    ComparisonResult,
    GoldenBaseline,
    GoldenBaselineError,
    MetricDelta,
    Tolerance,
    compare_metric,
    compare_record,
    compare_run,
    default_baseline_path,
    make_entry,
    make_timeout_entry,
)
from repro.golden.metrics import (
    METRIC_NAMES,
    METRIC_SPECS,
    QUALITY_METRICS,
    MetricSpec,
    QualityRecord,
    extract_quality,
    stable_float,
)
from repro.golden.runner import (
    DEFAULT_CELL_TIMEOUT,
    FAST_BENCHMARKS,
    FAST_SMT_CELLS,
    FAST_TECHNIQUES,
    GoldenRunReport,
    fast_cells,
    full_cells,
    golden_options,
    quality_summary,
    reset_quality_state,
    resolve_cells,
    run_golden,
)

__all__ = [
    "BaselineEntry",
    "CellVerdict",
    "ComparisonResult",
    "DEFAULT_CELL_TIMEOUT",
    "FAILING_STATUSES",
    "FAST_BENCHMARKS",
    "FAST_SMT_CELLS",
    "FAST_TECHNIQUES",
    "GoldenBaseline",
    "GoldenBaselineError",
    "GoldenRunReport",
    "METRIC_NAMES",
    "METRIC_SPECS",
    "MetricDelta",
    "MetricSpec",
    "QUALITY_METRICS",
    "QualityRecord",
    "Tolerance",
    "compare_metric",
    "compare_record",
    "compare_run",
    "default_baseline_path",
    "extract_quality",
    "fast_cells",
    "full_cells",
    "golden_options",
    "make_entry",
    "make_timeout_entry",
    "quality_summary",
    "reset_quality_state",
    "resolve_cells",
    "run_golden",
    "stable_float",
]
