"""Deterministic fingerprints of circuits, targets and option sets.

These feed the compilation cache key ``(circuit hash, target fingerprint,
technique, options fingerprint)``.  All fingerprints are content-based and
stable across processes, so batch workers and sequential runs agree.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.hardware.target import Target

#: Option value types that fingerprint deterministically.
_PRIMITIVES = (str, int, float, bool, type(None))


def circuit_hash(circuit: QuantumCircuit) -> str:
    """Content hash of a circuit: width plus every (gate, qubits) pair.

    The circuit *name* is deliberately excluded, so renamed but otherwise
    identical circuits share cache entries.  Gate parameters and the exact
    unitary matrix are included, distinguishing same-named custom gates.
    """
    digest = hashlib.sha256()
    digest.update(f"q{circuit.num_qubits}".encode())
    for instruction in circuit.instructions:
        gate = instruction.gate
        digest.update(
            f"|{gate.name};{gate.params!r};{instruction.qubits!r}".encode()
        )
        # Exact bytes, not repr: repr of an ndarray-backed matrix depends
        # on the process-global numpy print options and can collide.
        matrix = np.asarray(gate.matrix, dtype=complex)
        digest.update(str(matrix.shape).encode())
        digest.update(matrix.tobytes())
    return digest.hexdigest()


def target_fingerprint(target: Target) -> str:
    """Deterministic fingerprint of a target calibration and topology."""
    single = target.single_qubit_gates
    parts = [
        target.name,
        f"q{target.num_qubits}",
        f"su2:{single.duration!r}:{single.fidelity!r}",
    ]
    for name in sorted(target.two_qubit_gates):
        properties = target.two_qubit_gates[name]
        parts.append(f"{name}:{properties.duration!r}:{properties.fidelity!r}")
    if target.coupling_map is None:
        parts.append("coupling:all")
    else:
        pairs = sorted(tuple(sorted(pair)) for pair in target.coupling_map)
        parts.append(f"coupling:{pairs!r}")
    parts.append(f"t1:{target.t1!r}|t2:{target.t2!r}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def options_fingerprint(options: Mapping[str, object]) -> Optional[str]:
    """Fingerprint of an option mapping, or ``None`` when not cacheable.

    Only primitive option values (and flat tuples of primitives) are
    deterministic across runs; anything else — e.g. a custom ``rules``
    list — makes the compilation bypass the cache.
    """
    items = []
    for key in sorted(options):
        value = options[key]
        if isinstance(value, tuple) and all(isinstance(v, _PRIMITIVES) for v in value):
            items.append((key, value))
        elif isinstance(value, _PRIMITIVES):
            items.append((key, value))
        else:
            return None
    return repr(items)


def payload_fingerprint(payload: object) -> str:
    """Stable digest of a JSON-like payload (canonical-form sha256).

    Used by the HTTP sharding router to send byte-identical submissions
    to the same worker process (so repeats hit that worker's in-process
    L1 cache) without having to materialize the circuit first.  Key
    order does not matter; non-JSON values degrade through ``str``.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def cache_key(
    circuit: QuantumCircuit,
    target: Target,
    technique: str,
    options: Mapping[str, object],
) -> Optional[Tuple[str, str, str, str]]:
    """The full cache key, or ``None`` when the options are not cacheable."""
    options_part = options_fingerprint(options)
    if options_part is None:
        return None
    return (
        circuit_hash(circuit),
        target_fingerprint(target),
        technique,
        options_part,
    )
