"""String-keyed registry of adaptation techniques.

Every technique the evaluation section compares is addressable by a stable
key (the names used in the paper's figures):

========== ================================================== ============
key        description                                        objective
========== ================================================== ============
sat_f      SMT adaptation maximizing circuit fidelity         Eq. (8)
sat_r      SMT adaptation minimizing qubit idle time          Eq. (9)
sat_p      SMT adaptation, combined objective                 Eq. (10)
direct     direct basis translation (the reference baseline)  --
kak_cz     per-block KAK resynthesis with adiabatic CZ        --
kak_dcz    per-block KAK resynthesis with diabatic CZ         --
template_f greedy template optimization, fidelity objective   local Eq. (8)
template_r greedy template optimization, idle-time objective  local Eq. (9)
========== ================================================== ============

New techniques plug in through :func:`register_technique`; the registry
hands :func:`repro.compile` a fresh :class:`repro.pipeline.Pipeline` per
compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.pipeline.manager import Pipeline
from repro.pipeline.passes import (
    AnalyzeCostPass,
    ApplyPass,
    EvaluateRulesPass,
    GreedySelection,
    KakRules,
    MergeSingleQubitPass,
    PreprocessPass,
    RoutePass,
    SelectAll,
    SelectNone,
    SmtSelection,
    SolvePass,
    VerifyPass,
    no_rules,
    sat_rules,
    template_rules,
)


class UnknownTechniqueError(KeyError):
    """Raised when a technique key is not in the registry."""

    def __init__(self, key: str, known: Sequence[str]) -> None:
        super().__init__(key)
        self.key = key
        self.known = list(known)

    def __str__(self) -> str:
        known = ", ".join(sorted(self.known))
        return f"unknown technique {self.key!r}; registered techniques: {known}"


#: Options every built-in technique understands.
COMMON_OPTIONS: FrozenSet[str] = frozenset(
    {"merge_single_qubit_gates", "verify"}
)


@dataclass(frozen=True)
class TechniqueSpec:
    """One registered technique: key, docs and a pipeline factory."""

    key: str
    description: str
    pipeline_factory: Callable[[], Pipeline]
    option_names: FrozenSet[str] = COMMON_OPTIONS

    def build_pipeline(self) -> Pipeline:
        """Construct a fresh pipeline for one compilation."""
        return self.pipeline_factory()

    def validate_options(self, options: Dict[str, object]) -> None:
        """Reject option names this technique does not understand."""
        unknown = set(options) - set(self.option_names)
        if unknown:
            allowed = ", ".join(sorted(self.option_names)) or "(none)"
            raise TypeError(
                f"technique {self.key!r} got unexpected option(s) "
                f"{sorted(unknown)}; allowed options: {allowed}"
            )


_REGISTRY: Dict[str, TechniqueSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_technique(
    key: str,
    pipeline_factory: Callable[[], Pipeline],
    *,
    description: str = "",
    aliases: Sequence[str] = (),
    extra_options: Sequence[str] = (),
    overwrite: bool = False,
) -> TechniqueSpec:
    """Register a technique under ``key`` (the plugin hook).

    Parameters
    ----------
    key:
        Canonical registry key (e.g. ``"sat_p"``).
    pipeline_factory:
        Zero-argument callable returning a fresh
        :class:`repro.pipeline.Pipeline` per compilation.
    description:
        One-line description shown by :func:`available_techniques`.
    aliases:
        Alternative keys resolving to the same technique.
    extra_options:
        Option names (beyond the common ``merge_single_qubit_gates`` /
        ``verify``) this technique's passes read from the context.
    overwrite:
        Allow replacing what ``key`` resolves to.  ``overwrite`` applies
        to ``key`` only — an alias can never silently hijack another
        technique's name.
    """
    if not overwrite and (key in _REGISTRY or key in _ALIASES):
        raise ValueError(f"technique {key!r} is already registered "
                         "(pass overwrite=True to replace it)")
    for alias in aliases:
        points_elsewhere = _ALIASES.get(alias) not in (None, key)
        if alias in _REGISTRY or points_elsewhere:
            raise ValueError(
                f"alias {alias!r} would shadow an existing technique; "
                "register under that key explicitly instead"
            )
    if overwrite:
        if key in _ALIASES:
            # Re-registering an alias key detaches it: it becomes a
            # canonical key of its own, leaving its old target untouched.
            del _ALIASES[key]
        # Results compiled by a replaced registration must not be served.
        from repro.api.cache import GLOBAL_CACHE

        GLOBAL_CACHE.invalidate_technique(key)
    spec = TechniqueSpec(
        key=key,
        description=description,
        pipeline_factory=pipeline_factory,
        option_names=COMMON_OPTIONS | frozenset(extra_options),
    )
    _REGISTRY[key] = spec
    for alias in aliases:
        _ALIASES[alias] = key
    return spec


def unregister_technique(key: str) -> None:
    """Remove a technique (and its aliases) from the registry."""
    from repro.api.cache import GLOBAL_CACHE

    canonical = _ALIASES.get(key, key)
    _REGISTRY.pop(canonical, None)
    for alias in [a for a, k in _ALIASES.items() if k == canonical]:
        del _ALIASES[alias]
    GLOBAL_CACHE.invalidate_technique(canonical)


def resolve_technique(key: str) -> TechniqueSpec:
    """Resolve a key or alias to its :class:`TechniqueSpec`."""
    canonical = _ALIASES.get(key, key)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        raise UnknownTechniqueError(key, list(_REGISTRY)) from None


def available_techniques() -> Dict[str, str]:
    """Mapping of every canonical technique key to its description."""
    return {key: spec.description for key, spec in _REGISTRY.items()}


# ---------------------------------------------------------------------------
# Built-in techniques
# ---------------------------------------------------------------------------
def _standard_pipeline(
    name: str,
    rules_factory,
    selection,
    reference_when_empty: bool = False,
    baseline_is_self: bool = False,
) -> Pipeline:
    """The Fig. 2 flow as the canonical eight-pass pipeline."""
    return Pipeline(
        [
            RoutePass(),
            PreprocessPass(),
            EvaluateRulesPass(rules_factory),
            SolvePass(selection),
            ApplyPass(reference_when_empty=reference_when_empty),
            MergeSingleQubitPass(),
            VerifyPass(),
            AnalyzeCostPass(baseline_is_self=baseline_is_self),
        ],
        name=name,
    )


def _register_builtins() -> None:
    sat_options = ("rules", "max_improvement_rounds", "incremental_theory")
    register_technique(
        "sat_f",
        lambda: _standard_pipeline("sat_f", sat_rules, SmtSelection("fidelity")),
        description="SMT adaptation maximizing circuit fidelity (SAT_F, Eq. 8)",
        aliases=("sat_fidelity",),
        extra_options=sat_options,
    )
    register_technique(
        "sat_r",
        lambda: _standard_pipeline("sat_r", sat_rules, SmtSelection("idle")),
        description="SMT adaptation minimizing qubit idle time (SAT_R, Eq. 9)",
        aliases=("sat_idle",),
        extra_options=sat_options,
    )
    register_technique(
        "sat_p",
        lambda: _standard_pipeline("sat_p", sat_rules, SmtSelection("combined")),
        description="SMT adaptation with the combined objective (SAT_P, Eq. 10)",
        aliases=("sat", "sat_combined"),
        extra_options=sat_options,
    )
    register_technique(
        "direct",
        lambda: _standard_pipeline("direct", no_rules, SelectNone(),
                                   reference_when_empty=True,
                                   baseline_is_self=True),
        description="direct basis translation through the CZ library (baseline)",
    )
    register_technique(
        "kak_cz",
        lambda: _standard_pipeline("kak_cz", KakRules("cz"), SelectAll()),
        description="per-block KAK resynthesis with the adiabatic CZ",
        aliases=("kak",),
    )
    register_technique(
        "kak_dcz",
        lambda: _standard_pipeline("kak_dcz", KakRules("cz_d"), SelectAll()),
        description="per-block KAK resynthesis with the diabatic CZ",
        aliases=("kak_czd",),
    )
    register_technique(
        "template_f",
        lambda: _standard_pipeline("template_f", template_rules,
                                   GreedySelection("fidelity")),
        description="greedy template optimization, fidelity objective",
        aliases=("template_fidelity",),
        extra_options=("rules",),
    )
    register_technique(
        "template_r",
        lambda: _standard_pipeline("template_r", template_rules,
                                   GreedySelection("idle")),
        description="greedy template optimization, idle-time objective",
        aliases=("template_idle",),
        extra_options=("rules",),
    )


_register_builtins()

#: The import-time registrations, captured so batch drivers can tell
#: whether a key still resolves to the spec every process re-creates on
#: import.  Runtime registrations (or overwritten built-ins) exist only
#: in the registering process and must not be shipped to process-pool
#: workers, which re-import a fresh registry.
_BUILTIN_SPECS: Dict[str, TechniqueSpec] = dict(_REGISTRY)

#: Technique keys registered at import time in every process.
BUILTIN_TECHNIQUES = frozenset(_BUILTIN_SPECS)


def is_builtin_spec(spec: TechniqueSpec) -> bool:
    """True when ``spec`` is the unmodified import-time registration."""
    return _BUILTIN_SPECS.get(spec.key) is spec

#: The canonical technique keys of the paper's evaluation, in figure order.
PAPER_TECHNIQUES: Tuple[str, ...] = (
    "direct",
    "kak_cz",
    "kak_dcz",
    "template_f",
    "template_r",
    "sat_f",
    "sat_r",
    "sat_p",
)
