"""Deterministic in-process cache of compilation results.

Results are keyed by ``(circuit hash, target fingerprint, technique,
options fingerprint)`` — see :mod:`repro.api.fingerprints`.  A cache hit
returns a deep copy of the stored :class:`repro.core.AdaptationResult`
with the report flagged ``cache_hit=True``, so callers can freely mutate
what they get back without corrupting the cache.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

CacheKey = Tuple[str, str, str, str]


@dataclass
class CacheInfo:
    """Hit/miss counters and current size of the compilation cache."""

    hits: int = 0
    misses: int = 0
    size: int = 0


class CompilationCache:
    """A thread-safe result store with hit/miss accounting."""

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: Dict[CacheKey, object] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Optional[CacheKey]):
        """Return a detached copy of the cached result, or ``None``."""
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._hits += 1
        result = copy.deepcopy(entry)
        if result.report is not None:
            result.report = result.report.as_cache_hit()
        return result

    def put(self, key: Optional[CacheKey], result) -> None:
        """Store a result (detached copy) unless the key is uncacheable."""
        if key is None:
            return
        with self._lock:
            if len(self._entries) >= self.max_entries and key not in self._entries:
                # Drop the oldest entry (insertion order) to bound memory.
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = copy.deepcopy(result)

    def clear(self) -> None:
        """Empty the cache and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def invalidate_technique(self, technique: str) -> int:
        """Drop every entry compiled by ``technique``; returns the count.

        Called when a technique key is re-registered or removed, so stale
        results from the replaced pipeline can never be served.
        """
        with self._lock:
            stale = [key for key in self._entries if key[2] == technique]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def info(self) -> CacheInfo:
        """Current hit/miss counters and size."""
        with self._lock:
            return CacheInfo(hits=self._hits, misses=self._misses,
                             size=len(self._entries))


#: The process-wide cache used by :func:`repro.compile`.
GLOBAL_CACHE = CompilationCache()


def clear_compilation_cache() -> None:
    """Empty the process-wide compilation cache."""
    GLOBAL_CACHE.clear()


def compilation_cache_info() -> CacheInfo:
    """Hit/miss counters and size of the process-wide compilation cache."""
    return GLOBAL_CACHE.info()
