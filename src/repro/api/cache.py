"""Deterministic in-process cache of compilation results (the L1 tier).

Results are keyed by ``(circuit hash, target fingerprint, technique,
options fingerprint)`` — see :mod:`repro.api.fingerprints`.  A cache hit
returns a deep copy of the stored :class:`repro.core.AdaptationResult`
with the report flagged ``cache_hit=True``, so callers can freely mutate
what they get back without corrupting the cache.

The cache is a true LRU: every hit refreshes the entry's recency and the
least recently *used* entry is evicted when the cache is full.

A persistent second tier (the disk-backed
:class:`repro.service.PersistentResultStore`) can be installed behind the
process-wide L1 with :func:`install_persistent_store`;
:func:`repro.compile` then consults L1 → L2 → pipeline and populates both
tiers on a miss.  The hook is duck-typed (``get(key)`` / ``put(key,
result)``), keeping :mod:`repro.api` free of any dependency on the
service layer above it.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

CacheKey = Tuple[str, str, str, str]


@dataclass
class CacheInfo:
    """Hit/miss counters and current size of the compilation cache."""

    hits: int = 0
    misses: int = 0
    size: int = 0


class CompilationCache:
    """A thread-safe LRU result store with hit/miss accounting."""

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Optional[CacheKey]):
        """Return a detached copy of the cached result, or ``None``.

        A hit moves the entry to the most-recently-used position, so the
        eviction policy is true LRU rather than insertion-order FIFO.
        """
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        result = copy.deepcopy(entry)
        if result.report is not None:
            result.report = result.report.as_cache_hit()
        return result

    def put(self, key: Optional[CacheKey], result) -> None:
        """Store a result (detached copy) unless the key is uncacheable."""
        if key is None:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif len(self._entries) >= self.max_entries:
                # Drop the least recently used entry to bound memory.
                self._entries.popitem(last=False)
            self._entries[key] = copy.deepcopy(result)

    def keys(self):
        """The cached keys from least to most recently used (a snapshot)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Empty the cache and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def invalidate_technique(self, technique: str) -> int:
        """Drop every entry compiled by ``technique``; returns the count.

        Called when a technique key is re-registered or removed, so stale
        results from the replaced pipeline can never be served.
        """
        with self._lock:
            stale = [key for key in self._entries if key[2] == technique]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def info(self) -> CacheInfo:
        """Current hit/miss counters and size."""
        with self._lock:
            return CacheInfo(hits=self._hits, misses=self._misses,
                             size=len(self._entries))


#: The process-wide cache used by :func:`repro.compile`.
GLOBAL_CACHE = CompilationCache()


def clear_compilation_cache() -> None:
    """Empty the process-wide compilation cache (L1 only)."""
    GLOBAL_CACHE.clear()


def compilation_cache_info() -> CacheInfo:
    """Hit/miss counters and size of the process-wide compilation cache."""
    return GLOBAL_CACHE.info()


# ---------------------------------------------------------------------------
# L2: the optional persistent store behind the in-process cache
# ---------------------------------------------------------------------------
_L2_LOCK = threading.Lock()
_L2_STORE = None


def install_persistent_store(store):
    """Install ``store`` as the L2 tier behind the process-wide cache.

    ``store`` is duck-typed: it needs ``get(key) -> AdaptationResult |
    None`` and ``put(key, result)``.  :func:`repro.compile` consults it
    after an L1 miss and writes fresh results through to it.  Returns the
    store, replacing any previously installed one.
    """
    global _L2_STORE
    with _L2_LOCK:
        _L2_STORE = store
    return store


def uninstall_persistent_store() -> None:
    """Detach the L2 tier (the store itself is left untouched)."""
    global _L2_STORE
    with _L2_LOCK:
        _L2_STORE = None


def persistent_store():
    """The currently installed L2 store, or ``None``."""
    return _L2_STORE


def store_result(key: Optional[CacheKey], result) -> None:
    """Write one freshly compiled result through both cache tiers.

    The single write path for :func:`repro.compile`, the batch fan-out
    merge and the service's process-mode merge — so write-through
    semantics can only ever change in one place.
    """
    if key is None:
        return
    GLOBAL_CACHE.put(key, result)
    store = _L2_STORE
    if store is not None:
        store.put(key, result)
