"""Public compilation API: the facade, the technique registry, the cache.

Most users only need::

    import repro

    result = repro.compile(circuit, target, technique="sat_p")
    batch = repro.compile_many(repro.workloads.evaluation_suite())

See :mod:`repro.api.registry` for the technique keys and the
:func:`register_technique` plugin hook, and :mod:`repro.pipeline` for the
pass infrastructure underneath.
"""

from repro.api.cache import (
    CacheInfo,
    CompilationCache,
    clear_compilation_cache,
    compilation_cache_info,
    install_persistent_store,
    persistent_store,
    uninstall_persistent_store,
)
from repro.api.compile import compile, compile_many
from repro.api.fingerprints import (
    cache_key,
    circuit_hash,
    options_fingerprint,
    payload_fingerprint,
    target_fingerprint,
)
from repro.api.registry import (
    BUILTIN_TECHNIQUES,
    PAPER_TECHNIQUES,
    TechniqueSpec,
    UnknownTechniqueError,
    available_techniques,
    is_builtin_spec,
    register_technique,
    resolve_technique,
    unregister_technique,
)

__all__ = [
    "compile",
    "compile_many",
    "register_technique",
    "unregister_technique",
    "resolve_technique",
    "available_techniques",
    "TechniqueSpec",
    "UnknownTechniqueError",
    "PAPER_TECHNIQUES",
    "BUILTIN_TECHNIQUES",
    "is_builtin_spec",
    "circuit_hash",
    "target_fingerprint",
    "options_fingerprint",
    "payload_fingerprint",
    "cache_key",
    "CompilationCache",
    "CacheInfo",
    "clear_compilation_cache",
    "compilation_cache_info",
    "install_persistent_store",
    "persistent_store",
    "uninstall_persistent_store",
]
