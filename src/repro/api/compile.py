"""The unified compilation facade: :func:`compile` and :func:`compile_many`.

``repro.compile(circuit, target, technique="sat_p", **options)`` is the
single front door to every adaptation technique of the paper (and to any
technique plugged in through :func:`repro.api.register_technique`).  It

1. resolves the technique key in the registry,
2. consults the deterministic result cache keyed by (circuit hash, target
   fingerprint, technique, options),
3. on a miss, runs the technique's pass pipeline with per-stage
   instrumentation, and
4. returns an :class:`repro.core.AdaptationResult` whose ``report`` field
   carries the :class:`repro.pipeline.CompilationReport`.

``compile_many`` maps the same flow over a batch — plain circuits,
``(name, circuit)`` pairs or :class:`repro.workloads.WorkloadSpec`
entries — optionally fanning out over a process pool.

Both entry points also ingest OpenQASM 2.0 directly: a string that is a
``.qasm`` path loads the file, any other string parses as QASM source
(see :mod:`repro.interop`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.api.cache import GLOBAL_CACHE, persistent_store, store_result
from repro.api.fingerprints import (
    cache_key,
    circuit_hash,
    options_fingerprint,
    target_fingerprint,
)
from repro.api.registry import is_builtin_spec, resolve_technique
from repro.circuits.circuit import QuantumCircuit
from repro.hardware.target import Target
from repro.pipeline.report import CompilationReport
from repro.resilience.budget import (
    Budget,
    CompileCancelled,
    CompileInterrupted,
    budget_scope,
    current_budget,
)
from repro.telemetry.instruments import record_cache, record_compile
from repro.trace.tracer import scoped_tracer

BatchItem = Union[
    QuantumCircuit, str, Tuple[str, QuantumCircuit], "WorkloadSpec"
]
TargetLike = Union[Target, Callable[[QuantumCircuit], Target], None]


def _effective_options(spec, options: Dict[str, object]) -> Dict[str, object]:
    """Pin defaults that influence results, so the cache key covers them.

    The SMT techniques' improvement-round cap defaults to the *mutable*
    :data:`repro.core.model.DEFAULT_MAX_IMPROVEMENT_ROUNDS` (test fixtures
    and the ``REPRO_MAX_IMPROVEMENT_ROUNDS`` environment variable change
    it).  Resolving it here keeps cached results from outliving a changed
    default.
    """
    from repro.core.model import DEFAULT_MAX_IMPROVEMENT_ROUNDS

    options = dict(options)
    if (
        "max_improvement_rounds" in spec.option_names
        and options.get("max_improvement_rounds") is None
    ):
        options["max_improvement_rounds"] = DEFAULT_MAX_IMPROVEMENT_ROUNDS
    return options


def compile(
    circuit: QuantumCircuit,
    target: Target,
    technique: str = "sat_p",
    *,
    use_cache: bool = True,
    trace=None,
    timeout: Optional[float] = None,
    on_deadline: Optional[str] = None,
    fallback=None,
    **options: object,
):
    """Adapt ``circuit`` to ``target`` with the named technique.

    Parameters
    ----------
    circuit:
        The input circuit (any basis; it is routed and translated as
        needed).  A string is accepted too: a single-line ``.qasm``
        path loads that file, anything else parses as OpenQASM 2.0
        source.
    target:
        The hardware target, e.g. :func:`repro.hardware.spin_qubit_target`.
    technique:
        Registry key or alias — one of ``sat_f``, ``sat_r``, ``sat_p``,
        ``direct``, ``kak_cz``, ``kak_dcz``, ``template_f``,
        ``template_r``, or a key added via
        :func:`repro.api.register_technique`.
    use_cache:
        Consult/populate the deterministic compilation cache.  Results
        with non-primitive options (e.g. a custom ``rules`` list) always
        bypass the cache.
    trace:
        Structured event tracing for this call (see :mod:`repro.trace`).
        ``None`` (default) follows the ambient tracer — the global one
        installed by :func:`repro.trace.start_tracing` / ``REPRO_TRACE``,
        if any; ``False`` forces tracing off; ``True`` uses (and if
        needed auto-starts from ``REPRO_TRACE``) the global tracer; a
        path string traces just this call into that JSONL file; a
        :class:`repro.trace.Tracer` traces into that instance.  Tracing
        never affects the result or its cache key.
    timeout:
        Wall-clock deadline in seconds for this compile.  The budget is
        checked cooperatively at every SAT conflict, SMT theory check,
        OMT improvement round and pipeline pass boundary; when it fires,
        a :class:`repro.resilience.CompileDeadlineExceeded` is raised —
        or, under ``on_deadline="degrade"``, a fallback technique is
        tried instead.  Like ``trace``, the deadline parameters never
        enter the cache key.  When a budget is already in scope (e.g.
        installed by the service scheduler around this call), it keeps
        governing the compile; passing ``timeout`` here layers a new
        budget over it for this call only.
    on_deadline:
        ``"raise"`` (default) or ``"degrade"`` — on deadline, walk the
        degradation ladder (see :mod:`repro.resilience.degrade`) and
        return the first fallback result that lands, flagged via
        ``report.degraded_from`` / ``report.deadline_events``.
    fallback:
        Degradation ladder override: a technique key or sequence of keys
        tried in order, ``False`` to disable fallback, ``None`` for the
        per-technique default ladder.
    **options:
        Technique options: ``merge_single_qubit_gates`` and ``verify``
        for every technique; ``rules`` and ``max_improvement_rounds``
        for the SMT techniques; ``rules`` for the template techniques.

    Returns
    -------
    repro.core.AdaptationResult
        The adapted circuit with costs, provenance and a per-stage
        :class:`repro.pipeline.CompilationReport` in ``result.report``.
    """
    if isinstance(circuit, str):
        from repro.interop import coerce_circuit_input

        circuit = coerce_circuit_input(circuit)
    spec = resolve_technique(technique)
    spec.validate_options(dict(options))
    options = _effective_options(spec, options)

    # The ambient budget (e.g. installed by the service scheduler) keeps
    # governing the compile via the solver checkpoints; explicit deadline
    # parameters layer a per-call budget over it, linked so an outer
    # cancellation still interrupts this call.
    ambient = current_budget()
    budget = None
    if timeout is not None or on_deadline is not None or fallback is not None:
        budget = Budget(timeout=timeout, on_deadline=on_deadline or "raise",
                        fallback=fallback, parent=ambient)
    policy = budget if budget is not None else ambient

    digest = circuit_hash(circuit)
    fingerprint = target_fingerprint(target)
    options_part = options_fingerprint(options)
    key = (
        (digest, fingerprint, spec.key, options_part)
        if use_cache and options_part is not None
        else None
    )
    with scoped_tracer(trace) as tracer:
        token = tracer.begin("compile", "api", technique=spec.key,
                             circuit=circuit.name)
        try:
            if use_cache:
                cached = GLOBAL_CACHE.get(key)
                if cached is not None:
                    record_cache("l1", "hit")
                    tracer.event("cache.hit", "api", level="memory")
                    return cached
                record_cache("l1", "miss")
                store = persistent_store()
                if store is not None and key is not None:
                    persisted = store.get(key)
                    if persisted is not None:
                        # Promote to L1 so the next request stays in-process,
                        # then serve a detached copy flagged as a cache hit.
                        GLOBAL_CACHE.put(key, persisted)
                        if persisted.report is not None:
                            persisted.report = persisted.report.as_cache_hit()
                        record_cache("l2", "hit")
                        tracer.event("cache.hit", "api", level="persistent")
                        return persisted
                    record_cache("l2", "miss")

            report = CompilationReport(
                technique=spec.key,
                circuit_name=circuit.name,
                circuit_hash=digest,
                target_fingerprint=fingerprint,
                options=dict(options),
            )
            pipeline = spec.build_pipeline()
            try:
                started = time.perf_counter()
                with budget_scope(budget):
                    result = pipeline.run(circuit, target, technique=spec.key,
                                          options=options, report=report)
                record_compile(spec.key, time.perf_counter() - started)
            except CompileInterrupted as error:
                tracer.event("resilience.deadline", "api",
                             technique=spec.key, reason=error.reason,
                             checkpoint=error.checkpoint)
                if (isinstance(error, CompileCancelled) or policy is None
                        or policy.on_deadline != "degrade"):
                    raise
                return _degrade(circuit, target, spec, policy, error,
                                use_cache=use_cache, tracer=tracer,
                                options=options)
            if use_cache:
                store_result(key, result)
            return result
        finally:
            tracer.end(token)


def _degrade(circuit, target, spec, policy, error, *, use_cache, tracer,
             options):
    """Walk the degradation ladder after ``error`` interrupted ``spec``.

    Each rung gets a short grace deadline (a fraction of the original
    timeout, see :mod:`repro.resilience.degrade`) and runs under
    ``on_deadline="raise"`` so a slow rung is skipped rather than
    recursively degraded.  The first result that lands is returned with
    ``degraded_from`` naming the original technique and the full
    interruption history in ``deadline_events``; results are cached under
    the fallback technique's own key — never under the interrupted one.
    """
    from repro.resilience.degrade import fallback_grace, resolve_ladder

    events = [error.event()]
    ladder = resolve_ladder(spec.key, policy.fallback)
    grace = fallback_grace(policy.timeout)
    last = error
    for rung in ladder:
        rung_spec = resolve_technique(rung)
        rung_options = {name: value for name, value in options.items()
                        if name in rung_spec.option_names}
        tracer.event("resilience.degrade", "api",
                     from_technique=spec.key, to_technique=rung_spec.key,
                     grace_seconds=grace, reason=last.reason)
        try:
            # Re-enter the interrupted budget's scope so the rung's fresh
            # grace budget links to it as a parent: the original deadline
            # no longer applies, but an outer cancel still interrupts.
            with budget_scope(policy):
                result = compile(circuit, target, rung_spec.key,
                                 use_cache=use_cache, timeout=grace,
                                 on_deadline="raise", **rung_options)
        except CompileInterrupted as rung_error:
            events.append(rung_error.event())
            last = rung_error
            if isinstance(rung_error, CompileCancelled):
                raise
            continue
        report = result.report
        if report is not None:
            # Safe to annotate: both cache tiers store detached copies,
            # so the degradation provenance never leaks into the cached
            # entry under the fallback technique's key.
            report.degraded_from = spec.key
            report.deadline_events = events + list(report.deadline_events)
        return result
    raise last


# ---------------------------------------------------------------------------
# Batch compilation
# ---------------------------------------------------------------------------
def _materialize(item: BatchItem) -> Tuple[str, QuantumCircuit]:
    """Normalize a batch item to a (name, circuit) pair."""
    from repro.workloads import WorkloadSpec

    if isinstance(item, str):
        from repro.interop import coerce_circuit_input

        item = coerce_circuit_input(item)
    if isinstance(item, QuantumCircuit):
        return item.name, item
    if isinstance(item, WorkloadSpec):
        return item.name, _circuit_from_spec(item)
    if isinstance(item, tuple) and len(item) == 2 and isinstance(item[1], QuantumCircuit):
        return str(item[0]), item[1]
    raise TypeError(
        f"cannot compile batch item {item!r}; expected a QuantumCircuit, "
        "a (name, QuantumCircuit) pair or a WorkloadSpec"
    )


def _circuit_from_spec(spec) -> QuantumCircuit:
    """Build the concrete circuit of a :class:`WorkloadSpec`.

    For the ansatz kinds the spec's ``depth`` field carries the layer
    count (``p`` for QAOA, rotation+entangler layers for the VQE ansatz).
    """
    from repro.workloads import (
        hardware_efficient_ansatz,
        qaoa_ring_circuit,
        quantum_volume_circuit,
        random_template_circuit,
    )

    if spec.kind == "qv":
        return quantum_volume_circuit(spec.num_qubits, spec.depth, seed=spec.seed)
    if spec.kind == "random":
        return random_template_circuit(spec.num_qubits, spec.depth, seed=spec.seed)
    if spec.kind in ("qaoa", "qaoa_ring"):
        return qaoa_ring_circuit(spec.num_qubits, layers=spec.depth, seed=spec.seed)
    if spec.kind in ("vqe", "vqe_hwe"):
        return hardware_efficient_ansatz(
            spec.num_qubits, layers=spec.depth, seed=spec.seed
        )
    raise ValueError(f"unknown workload kind {spec.kind!r}")


def _resolve_target(target: TargetLike, circuit: QuantumCircuit,
                    durations: str) -> Target:
    """Pick the target for one batch entry."""
    from repro.hardware import spin_qubit_target

    if target is None:
        return spin_qubit_target(max(2, circuit.num_qubits), durations)
    if isinstance(target, Target):
        return target
    return target(circuit)


def _compile_one(payload):
    """Process-pool worker: compile one (name, circuit, target) entry."""
    name, circuit, target, technique, use_cache, options = payload
    result = compile(circuit, target, technique, use_cache=use_cache, **options)
    return name, result


def compile_many(
    items: Iterable[BatchItem],
    target: TargetLike = None,
    technique: str = "sat_p",
    *,
    durations: str = "D0",
    processes: Optional[int] = None,
    use_cache: bool = True,
    **options: object,
) -> Dict[str, object]:
    """Compile a batch of circuits, returning ``{name: AdaptationResult}``.

    Parameters
    ----------
    items:
        Circuits, ``(name, circuit)`` pairs,
        :class:`repro.workloads.WorkloadSpec` entries (e.g. the output of
        :func:`repro.workloads.evaluation_suite`), which are materialized
        deterministically from their seeds, or OpenQASM 2.0 strings
        (source text or single-line ``.qasm`` paths).
    target:
        A :class:`Target` used for every entry, a callable
        ``circuit -> Target``, or ``None`` to use the Table I spin-qubit
        target sized to each circuit.
    durations:
        Duration calibration (``"D0"`` or ``"D1"``) for the default
        spin-qubit target; ignored when ``target`` is given.
    processes:
        When > 1, fan the batch out over a process pool of this size.
        Each worker compiles independently; results (with their reports)
        are merged back into the caller's cache.  Techniques registered
        at runtime via :func:`repro.api.register_technique` exist only
        in this process — those batches run serially regardless, since a
        spawned worker re-imports a registry holding only the built-ins.
    use_cache, **options:
        Forwarded to :func:`compile`.

    Duplicate names are disambiguated with a numeric suffix so no result
    is silently dropped.
    """
    spec = resolve_technique(technique)
    # Resolve mutable defaults once, so parent-side cache keys, worker
    # compilations and the merged-back entries all agree.
    effective = _effective_options(spec, dict(options))
    payloads = []
    seen: Dict[str, int] = {}
    for item in items:
        name, circuit = _materialize(item)
        if name in seen:
            seen[name] += 1
            name = f"{name}#{seen[name]}"
        else:
            seen[name] = 0
        resolved = _resolve_target(target, circuit, durations)
        payloads.append((name, circuit, resolved, spec.key, use_cache, effective))

    results: Dict[str, object] = {}
    fan_out = (
        processes is not None
        and processes > 1
        and len(payloads) > 1
        # Plugin or overwritten techniques only exist in this process: a
        # worker would re-import the stock registry and silently compile
        # with the wrong pipeline.  See the docstring.
        and is_builtin_spec(spec)
    )
    if fan_out:
        # Serve what the parent's cache already has; dispatch only misses.
        pending = []
        for payload in payloads:
            name, circuit, resolved, _key, _uc, opts = payload
            cached = (
                GLOBAL_CACHE.get(cache_key(circuit, resolved, spec.key, opts))
                if use_cache
                else None
            )
            if cached is not None:
                results[name] = cached
            else:
                pending.append(payload)
        if pending:
            with ProcessPoolExecutor(max_workers=processes) as pool:
                fresh = list(pool.map(_compile_one, pending))
            for (name, circuit, resolved, _key, _uc, opts), (_name, result) in zip(
                pending, fresh
            ):
                results[name] = result
                if use_cache:
                    # Merge worker results into this process's cache (and
                    # any installed persistent store) so later calls hit.
                    store_result(cache_key(circuit, resolved, spec.key, opts),
                                 result)
        # Restore the input order the cache-hit partition disturbed.
        results = {payload[0]: results[payload[0]] for payload in payloads}
    else:
        for payload in payloads:
            name, result = _compile_one(payload)
            results[name] = result
    return results
