"""Deterministic fault injection for resilience testing.

A *fault plan* is a list of :class:`FaultSpec` entries, each naming an
instrumented **site** in the stack and an **action** to take when that
site is hit for the ``nth`` time (or on every hit ``after`` the first N).
Plans activate either programmatically (:func:`install_fault_plan`) or
through the ``REPRO_FAULTS`` environment variable — inline JSON or a
path to a JSON file — which spawned shard/worker processes inherit, the
same way ``REPRO_TRACE`` propagates tracing.

Instrumented sites and the actions they honor:

=================== ======================= ===============================
site                actions                 effect
=================== ======================= ===============================
``worker.compile``  ``die``                 process worker exits hard
                                            (``os._exit``) before compiling
``store.read``      ``corrupt``             the store entry's file on disk
                                            is overwritten with garbage
                                            just before the read
``http.response``   ``abort``, ``delay``    the gateway drops the
                                            connection without replying /
                                            sleeps ``seconds`` first
``sat.conflict``    ``slow``                the SAT solver sleeps
                                            ``seconds`` per conflict
                                            (forced solver slowdown)
=================== ======================= ===============================

Counting is per-process and thread-safe, so a plan like *"kill the
worker on its 3rd compile"* or *"abort the 5th HTTP response"* is
exactly reproducible.  When no plan is installed every hook is a single
``None`` test.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Environment variable holding a fault plan: inline JSON (a list of
#: spec objects) or a path to a JSON file.  Inherited by spawned shard
#: and pool-worker processes.
FAULTS_ENV_VAR = "REPRO_FAULTS"

_KNOWN_FIELDS = ("site", "action", "nth", "after", "times", "seconds")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: where, what, and on which hit(s).

    ``nth`` fires on exactly the nth hit of the site (1-based, once
    unless ``times`` raises the cap); ``after`` fires on every hit
    strictly after the first N (``after=0`` means every hit).  Exactly
    one of the two must be given.  ``seconds`` parameterizes the delay
    actions.
    """

    site: str
    action: str
    nth: Optional[int] = None
    after: Optional[int] = None
    times: Optional[int] = None
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.site or not self.action:
            raise ValueError("a fault spec needs both 'site' and 'action'")
        if (self.nth is None) == (self.after is None):
            raise ValueError(
                f"fault spec for {self.site!r} must set exactly one of "
                "'nth' (fire on that hit) or 'after' (fire on every "
                "later hit)"
            )
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"'nth' is 1-based, got {self.nth}")
        if self.after is not None and self.after < 0:
            raise ValueError(f"'after' must be >= 0, got {self.after}")
        if self.seconds < 0:
            raise ValueError(f"'seconds' must be >= 0, got {self.seconds}")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        unknown = set(payload) - set(_KNOWN_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown fault spec field(s) {sorted(unknown)}; "
                f"known fields: {list(_KNOWN_FIELDS)}"
            )
        return cls(
            site=str(payload.get("site", "")),
            action=str(payload.get("action", "")),
            nth=None if payload.get("nth") is None else int(payload["nth"]),
            after=None if payload.get("after") is None else int(payload["after"]),
            times=None if payload.get("times") is None else int(payload["times"]),
            seconds=float(payload.get("seconds", 0.0)),
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"site": self.site, "action": self.action}
        for field in ("nth", "after", "times"):
            value = getattr(self, field)
            if value is not None:
                payload[field] = value
        if self.seconds:
            payload["seconds"] = self.seconds
        return payload


PlanLike = Union["FaultPlan", str, Sequence[Union[FaultSpec, Dict[str, object]]]]


class FaultPlan:
    """An ordered set of fault specs with per-site hit counting."""

    def __init__(self, specs: Sequence[Union[FaultSpec, Dict[str, object]]]) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
            for spec in specs
        )
        self._hits: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if isinstance(payload, dict):
            payload = payload.get("faults", [payload])
        if not isinstance(payload, list):
            raise ValueError(
                "a fault plan is a JSON list of spec objects "
                f"(or {{'faults': [...]}}), got {type(payload).__name__}"
            )
        return cls(payload)

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` value: inline JSON or a file path."""
        stripped = value.strip()
        if stripped.startswith(("[", "{")):
            return cls.from_json(stripped)
        with open(value, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def fire(self, site: str) -> List[FaultSpec]:
        """Record one hit of ``site``; return the specs that trigger."""
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
            fired: List[FaultSpec] = []
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.nth is not None and count != spec.nth:
                    continue
                if spec.after is not None and count <= spec.after:
                    continue
                done = self._fired.get(index, 0)
                # An `nth` spec fires once by default; an `after` spec
                # fires on every later hit unless `times` caps it.
                limit = spec.times
                if limit is None and spec.nth is not None:
                    limit = 1
                if limit is not None and done >= limit:
                    continue
                self._fired[index] = done + 1
                fired.append(spec)
            return fired

    def delay(self, site: str) -> List[FaultSpec]:
        """Fire ``site``, sleeping for delay-type actions in place.

        Returns the non-delay specs that fired, for the caller to act on.
        """
        remaining: List[FaultSpec] = []
        for spec in self.fire(site):
            if spec.action in ("delay", "slow"):
                time.sleep(spec.seconds)
            else:
                remaining.append(spec)
        return remaining

    def hits(self) -> Dict[str, int]:
        """Per-site hit counts so far (a snapshot)."""
        with self._lock:
            return dict(self._hits)

    def reset(self) -> None:
        """Zero the hit/fire counters (e.g. in a forked child)."""
        with self._lock:
            self._hits.clear()
            self._fired.clear()

    def to_list(self) -> List[Dict[str, object]]:
        return [spec.to_dict() for spec in self.specs]


# ---------------------------------------------------------------------------
# The process-wide plan
# ---------------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: PlanLike) -> FaultPlan:
    """Activate a fault plan process-wide; returns it."""
    global _PLAN
    if isinstance(plan, FaultPlan):
        resolved = plan
    elif isinstance(plan, str):
        resolved = FaultPlan.from_json(plan)
    else:
        resolved = FaultPlan(plan)
    _PLAN = resolved
    return resolved


def clear_fault_plan() -> None:
    """Deactivate fault injection."""
    global _PLAN
    _PLAN = None


def active_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None`` (the common fast path)."""
    return _PLAN


def maybe_fault(site: str) -> Sequence[FaultSpec]:
    """Hit ``site`` against the installed plan; () when none installed."""
    plan = _PLAN
    if plan is None:
        return ()
    return plan.fire(site)


def fault_hook(site: str) -> Sequence[FaultSpec]:
    """Like :func:`maybe_fault` but services delay actions in place."""
    plan = _PLAN
    if plan is None:
        return ()
    return plan.delay(site)


def _load_env_plan() -> Optional[FaultPlan]:
    raw = os.environ.get(FAULTS_ENV_VAR)
    if not raw:
        return None
    return FaultPlan.from_env(raw)


_PLAN = _load_env_plan()

# A forked child starts its own hit counting: "kill the worker on its
# 3rd compile" means the 3rd compile in *that* process.
if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(
        after_in_child=lambda: _PLAN.reset() if _PLAN is not None else None
    )
