"""Cooperative compile budgets: deadlines, work limits and cancellation.

A :class:`Budget` bounds one compilation by wall-clock time and/or by
solver work (SAT conflicts, simplex pivots, OMT improvement rounds).  It
is carried through the stack by a context variable — installed with
:func:`budget_scope` around a compile and consulted at the solver
hot-loop checkpoints (the same sites the tracer instruments): every SAT
conflict, every SMT theory check, every OMT improvement round, and every
pipeline pass boundary.  When the budget is exhausted the checkpoint
raises a typed :class:`CompileDeadlineExceeded` that unwinds cleanly
through the pipeline (every span and lock in the stack releases via
``finally``), so callers get a catchable exception instead of a runaway
solve.

Cancellation rides the same flag: :meth:`Budget.cancel` can be called
from *any* thread (the scheduler does, when every waiter of a running
job has given up) and the next checkpoint in the compiling thread raises
:class:`CompileCancelled`.

The disabled fast path mirrors :mod:`repro.trace.tracer`: a module-level
boolean guards the context-variable lookup, so :func:`check_budget`
costs a few tens of nanoseconds when no budget is in scope — cheap
enough to call once per SAT conflict.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union


class CompileInterrupted(RuntimeError):
    """Base class for budget interruptions (deadline or cancellation)."""

    reason = "interrupted"

    def __init__(self, message: str, *, checkpoint: Optional[str] = None,
                 elapsed: Optional[float] = None,
                 budget: Optional["Budget"] = None) -> None:
        super().__init__(message)
        self.checkpoint = checkpoint
        self.elapsed = elapsed
        self.budget = budget

    def event(self) -> Dict[str, object]:
        """A JSON-serializable record of the interruption.

        These dicts accumulate in ``CompilationReport.deadline_events``
        when a deadline triggers the degradation ladder.
        """
        payload: Dict[str, object] = {
            "reason": self.reason,
            "message": str(self),
        }
        if self.checkpoint is not None:
            payload["checkpoint"] = self.checkpoint
        if self.elapsed is not None:
            payload["elapsed_seconds"] = round(self.elapsed, 6)
        if self.budget is not None:
            payload["budget"] = self.budget.as_dict()
        return payload


class CompileDeadlineExceeded(CompileInterrupted):
    """The wall-clock deadline or a work limit of the budget ran out."""

    reason = "deadline"


class CompileCancelled(CompileInterrupted):
    """The budget was cancelled from outside the compiling thread."""

    reason = "cancelled"


#: Degradation policies a budget can carry (see repro.resilience.degrade).
ON_DEADLINE_MODES: Tuple[str, ...] = ("raise", "degrade")

FallbackSpec = Union[None, bool, str, Sequence[str]]


class Budget:
    """A cooperative bound on one compilation.

    Parameters
    ----------
    timeout:
        Wall-clock seconds from :meth:`arm` (called by ``__init__``
        unless ``arm=False``) to the deadline.  ``None`` means no time
        bound — the budget then only enforces work limits and
        cancellation.
    max_conflicts, max_pivots, max_rounds:
        Optional work limits: total SAT conflicts, simplex pivots and
        OMT improvement rounds charged against this budget.
    on_deadline:
        What :func:`repro.compile` does when this budget fires:
        ``"raise"`` propagates :class:`CompileDeadlineExceeded`,
        ``"degrade"`` walks the fallback ladder (see
        :mod:`repro.resilience.degrade`).
    fallback:
        Explicit degradation ladder (a technique key or sequence of
        keys), ``None`` for the per-technique default ladder, ``False``
        to disable fallback even under ``on_deadline="degrade"``.
    parent:
        An enclosing budget whose *cancellation* (not its deadline)
        propagates to this one — used when a degraded retry runs under
        a fresh grace deadline but must still honor the original
        caller's cancel.
    arm:
        When ``False`` the deadline clock starts only at an explicit
        :meth:`arm` call — the scheduler creates budgets at submit time
        but arms them when the job actually starts running, so queue
        wait does not count against the compile deadline.
    """

    __slots__ = (
        "timeout", "max_conflicts", "max_pivots", "max_rounds",
        "on_deadline", "fallback", "parent",
        "conflicts", "pivots", "rounds", "checks",
        "_started", "_deadline", "_cancelled", "_cancel_reason",
    )

    def __init__(
        self,
        timeout: Optional[float] = None,
        *,
        max_conflicts: Optional[int] = None,
        max_pivots: Optional[int] = None,
        max_rounds: Optional[int] = None,
        on_deadline: str = "raise",
        fallback: FallbackSpec = None,
        parent: Optional["Budget"] = None,
        arm: bool = True,
    ) -> None:
        if timeout is not None:
            timeout = float(timeout)
            if timeout < 0:
                raise ValueError(f"timeout must be >= 0, got {timeout}")
        if on_deadline not in ON_DEADLINE_MODES:
            raise ValueError(
                f"on_deadline must be one of {ON_DEADLINE_MODES}, "
                f"got {on_deadline!r}"
            )
        self.timeout = timeout
        self.max_conflicts = max_conflicts
        self.max_pivots = max_pivots
        self.max_rounds = max_rounds
        self.on_deadline = on_deadline
        self.fallback = fallback
        self.parent = parent
        self.conflicts = 0
        self.pivots = 0
        self.rounds = 0
        self.checks = 0
        self._started = time.monotonic()
        self._deadline: Optional[float] = None
        self._cancelled = False
        self._cancel_reason: Optional[str] = None
        if arm:
            self.arm()

    def arm(self) -> "Budget":
        """(Re)start the deadline clock from now; returns self."""
        self._started = time.monotonic()
        if self.timeout is not None:
            self._deadline = self._started + self.timeout
        return self

    # -- cancellation (thread-safe: a single boolean write) -------------
    def cancel(self, reason: str = "cancelled") -> None:
        """Request interruption; the next checkpoint raises.

        Safe to call from any thread — the compiling thread observes the
        flag at its next checkpoint (typically within one SAT conflict
        or one pipeline pass).
        """
        self._cancel_reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True when this budget or any ancestor was cancelled."""
        budget: Optional[Budget] = self
        while budget is not None:
            if budget._cancelled:
                return True
            budget = budget.parent
        return False

    def cancel_reason(self) -> Optional[str]:
        budget: Optional[Budget] = self
        while budget is not None:
            if budget._cancelled:
                return budget._cancel_reason
            budget = budget.parent
        return None

    # -- time accounting ------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the budget was (last) armed."""
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when unbounded)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    @property
    def expired(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline

    # -- checkpoints ----------------------------------------------------
    def charge(self, checkpoint: str, conflicts: int = 0, pivots: int = 0,
               rounds: int = 0) -> None:
        """Account solver work and enforce every limit.

        Raises :class:`CompileCancelled` or
        :class:`CompileDeadlineExceeded` the moment the budget is out.
        """
        if conflicts:
            self.conflicts += conflicts
        if pivots:
            self.pivots += pivots
        if rounds:
            self.rounds += rounds
        self.checks += 1
        if self.cancelled:
            raise CompileCancelled(
                self.cancel_reason() or "compilation cancelled",
                checkpoint=checkpoint, elapsed=self.elapsed(), budget=self,
            )
        if self._deadline is not None and time.monotonic() >= self._deadline:
            raise CompileDeadlineExceeded(
                f"compile deadline of {self.timeout:g}s exceeded "
                f"at {checkpoint}",
                checkpoint=checkpoint, elapsed=self.elapsed(), budget=self,
            )
        if self.max_conflicts is not None and self.conflicts >= self.max_conflicts:
            raise CompileDeadlineExceeded(
                f"conflict budget of {self.max_conflicts} exhausted "
                f"at {checkpoint}",
                checkpoint=checkpoint, elapsed=self.elapsed(), budget=self,
            )
        if self.max_pivots is not None and self.pivots >= self.max_pivots:
            raise CompileDeadlineExceeded(
                f"pivot budget of {self.max_pivots} exhausted "
                f"at {checkpoint}",
                checkpoint=checkpoint, elapsed=self.elapsed(), budget=self,
            )
        if self.max_rounds is not None and self.rounds >= self.max_rounds:
            raise CompileDeadlineExceeded(
                f"round budget of {self.max_rounds} exhausted "
                f"at {checkpoint}",
                checkpoint=checkpoint, elapsed=self.elapsed(), budget=self,
            )

    def check(self, checkpoint: str = "checkpoint") -> None:
        """Enforce the budget without charging any work."""
        self.charge(checkpoint)

    def as_dict(self) -> Dict[str, object]:
        """A compact JSON-serializable summary (for events and status)."""
        payload: Dict[str, object] = {}
        if self.timeout is not None:
            payload["timeout"] = self.timeout
        for name in ("max_conflicts", "max_pivots", "max_rounds"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        for name in ("conflicts", "pivots", "rounds"):
            value = getattr(self, name)
            if value:
                payload[name] = value
        if self.cancelled:
            payload["cancelled"] = True
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"timeout={self.timeout!r}"]
        if self.cancelled:
            bits.append("cancelled")
        return f"Budget({', '.join(bits)})"


# ---------------------------------------------------------------------------
# The ambient budget scope
# ---------------------------------------------------------------------------
# Mirrors repro.trace.tracer: a context variable holds the budget in
# scope; a module-level boolean (true while ANY scope anywhere is open)
# lets the common no-budget case skip the context-variable lookup.
_SCOPE: "ContextVar[Optional[Budget]]" = ContextVar(
    "repro_budget_scope", default=None
)
_ACTIVE = False
_ACTIVE_COUNT = 0
_ACTIVE_LOCK = threading.Lock()


def current_budget() -> Optional[Budget]:
    """The budget in scope for this context, or ``None``."""
    if not _ACTIVE:
        return None
    return _SCOPE.get()


def check_budget(checkpoint: str = "checkpoint", conflicts: int = 0,
                 pivots: int = 0, rounds: int = 0) -> None:
    """The hot-loop hook: enforce the ambient budget, if any.

    ~40 ns when no budget is in scope anywhere in the process (one
    module-global boolean test), so solver loops can call it per
    conflict/check/round without measurable overhead.
    """
    if not _ACTIVE:
        return
    budget = _SCOPE.get()
    if budget is not None:
        budget.charge(checkpoint, conflicts=conflicts, pivots=pivots,
                      rounds=rounds)


@contextmanager
def budget_scope(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install ``budget`` as the ambient budget for this context.

    ``budget_scope(None)`` is a no-op, so call sites can pass an
    optional budget through unconditionally.  Scopes nest: the inner
    budget *replaces* the outer for the duration (link them explicitly
    via ``Budget(parent=...)`` when the outer cancel must propagate).
    """
    global _ACTIVE, _ACTIVE_COUNT
    if budget is None:
        yield None
        return
    token = _SCOPE.set(budget)
    with _ACTIVE_LOCK:
        _ACTIVE_COUNT += 1
        _ACTIVE = True
    try:
        yield budget
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE_COUNT -= 1
            _ACTIVE = _ACTIVE_COUNT > 0
        _SCOPE.reset(token)
