"""Resilience primitives: budgets, degradation ladders, fault injection.

This package bounds and hardens the compilation stack:

- :class:`Budget` / :func:`budget_scope` — cooperative wall-clock
  deadlines, solver work limits and cross-thread cancellation, checked
  at the solver hot-loop checkpoints (see :mod:`repro.resilience.budget`).
- :mod:`repro.resilience.degrade` — the fallback ladders
  ``repro.compile(on_deadline="degrade")`` walks when a deadline fires.
- :mod:`repro.resilience.faults` — deterministic, env-activated fault
  injection (worker kills, store corruption, HTTP aborts, solver
  slowdown) so every recovery path is tested by inducing the failure.
"""

from repro.resilience.budget import (
    Budget,
    CompileCancelled,
    CompileDeadlineExceeded,
    CompileInterrupted,
    budget_scope,
    check_budget,
    current_budget,
)
from repro.resilience.degrade import (
    DEFAULT_LADDERS,
    GRACE_FRACTION,
    MIN_GRACE_SECONDS,
    fallback_grace,
    resolve_ladder,
)
from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    clear_fault_plan,
    fault_hook,
    install_fault_plan,
    maybe_fault,
)

__all__ = [
    "Budget",
    "CompileCancelled",
    "CompileDeadlineExceeded",
    "CompileInterrupted",
    "budget_scope",
    "check_budget",
    "current_budget",
    "DEFAULT_LADDERS",
    "GRACE_FRACTION",
    "MIN_GRACE_SECONDS",
    "fallback_grace",
    "resolve_ladder",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_hook",
    "install_fault_plan",
    "maybe_fault",
]
