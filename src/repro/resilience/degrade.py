"""Degradation ladders: what to fall back to when a deadline fires.

When a compile under ``on_deadline="degrade"`` runs out of budget,
:func:`repro.compile` walks a *ladder* of cheaper techniques, giving
each rung a short grace deadline, and returns the first result that
lands — flagged ``degraded_from`` in its report, with the interruption
history in ``deadline_events``.

The default ladders step from the paper's expensive OMT formulations
down through their greedy counterparts to the ``direct`` baseline,
which compiles in milliseconds and therefore (nearly) always fits the
grace window:

========== =========================
technique  default ladder
========== =========================
sat_p      sat_r -> direct
sat_f      template_f -> direct
sat_r      template_r -> direct
kak_cz     direct
kak_dcz    direct
template_f direct
template_r direct
direct     (nothing cheaper exists)
========== =========================

Techniques registered at runtime fall back straight to ``direct``.
Callers override the ladder per compile (``fallback=("sat_r",)``),
or disable it (``fallback=False``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

#: Per-technique default fallback ladders, cheapest-last.
DEFAULT_LADDERS: Dict[str, Tuple[str, ...]] = {
    "sat_p": ("sat_r", "direct"),
    "sat_f": ("template_f", "direct"),
    "sat_r": ("template_r", "direct"),
    "kak_cz": ("direct",),
    "kak_dcz": ("direct",),
    "template_f": ("direct",),
    "template_r": ("direct",),
    "direct": (),
}

#: Every fallback rung gets at least this many seconds, however small
#: the original timeout was — `direct` needs a moment to run at all.
MIN_GRACE_SECONDS = 0.5

#: ...and otherwise this fraction of the original timeout, so the whole
#: degraded compile stays within ~(1 + rungs * fraction) x timeout.
GRACE_FRACTION = 0.15


def resolve_ladder(
    technique: str,
    fallback: Union[None, bool, str, Sequence[str]] = None,
) -> Tuple[str, ...]:
    """The fallback techniques to try for ``technique``, in order.

    ``fallback=None`` selects the default ladder (unknown techniques
    degrade straight to ``direct``), ``False`` disables degradation,
    a string or sequence of strings is used verbatim (minus the failing
    technique itself, which would just time out again).
    """
    if fallback is False:
        return ()
    if fallback is None or fallback is True:
        ladder = DEFAULT_LADDERS.get(technique, ("direct",))
    elif isinstance(fallback, str):
        ladder = (fallback,)
    else:
        ladder = tuple(str(key) for key in fallback)
    return tuple(key for key in ladder if key != technique)


def fallback_grace(timeout: Optional[float]) -> Optional[float]:
    """The per-rung grace deadline for a compile that had ``timeout``.

    ``None`` (no time bound — the budget fired on a work limit) keeps
    the fallback unbounded too.
    """
    if timeout is None:
        return None
    return max(MIN_GRACE_SECONDS, GRACE_FRACTION * float(timeout))
