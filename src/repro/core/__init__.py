"""SAT/SMT-based quantum circuit adaptation (the paper's contribution).

.. note::
   The public entry point is the unified facade :func:`repro.compile`
   (with :func:`repro.compile_many` for batches): techniques are
   addressed by registry keys (``"sat_p"``, ``"direct"``, ``"kak_cz"``,
   ...) and run as the instrumented pass pipeline of
   :mod:`repro.pipeline`.  The adapter classes exported here
   (:class:`SatAdapter` and the baselines) are deprecated shims kept for
   backwards compatibility.

The adaptation flow follows Fig. 2 of the paper:

1. **Preprocessing** (:mod:`repro.core.preprocessing`): the routed input
   circuit is partitioned into two-qubit blocks, each block is translated
   to the target basis to obtain a reference cost (duration = critical
   path, fidelity = product of gate fidelities), and the block dependency
   graph is built.
2. **Substitution-rule evaluation** (:mod:`repro.core.rules`): every rule of
   Fig. 3 (conditional-rotation, direct and composite swap, KAK
   decomposition) is matched against the circuit, producing candidate
   substitutions with their duration / fidelity deltas (Eqs. 4 and 6).
3. **SMT model construction and solving** (:mod:`repro.core.model`): Boolean
   selection variables, block start/duration/fidelity variables and the
   constraints of Eqs. (1)-(6) are handed to the OMT solver with one of the
   objectives SAT_F (Eq. 8), SAT_R (Eq. 9) or SAT_P (Eq. 10).
4. **Adaptation extraction** (:mod:`repro.core.adapter`): chosen
   substitutions are applied, remaining foreign gates fall back to the
   reference translation, and the resulting circuit is verified to be
   unitarily equivalent to the input.

Baseline techniques (direct basis translation, KAK-only decomposition with
CZ or diabatic CZ, template optimization with fidelity or idle-time
objective) live in :mod:`repro.core.baselines`.
"""

from repro.core.rules import Substitution, SubstitutionRule, standard_rules, evaluate_rules
from repro.core.preprocessing import PreprocessedBlock, PreprocessedCircuit, preprocess
from repro.core.model import AdaptationModel, ModelSolution, OBJECTIVE_FIDELITY, OBJECTIVE_IDLE, OBJECTIVE_COMBINED
from repro.core.adapter import AdaptationResult, SatAdapter
from repro.core.baselines import (
    DirectTranslationAdapter,
    KakAdapter,
    TemplateOptimizationAdapter,
)

__all__ = [
    "Substitution",
    "SubstitutionRule",
    "standard_rules",
    "evaluate_rules",
    "PreprocessedBlock",
    "PreprocessedCircuit",
    "preprocess",
    "AdaptationModel",
    "ModelSolution",
    "OBJECTIVE_FIDELITY",
    "OBJECTIVE_IDLE",
    "OBJECTIVE_COMBINED",
    "AdaptationResult",
    "SatAdapter",
    "DirectTranslationAdapter",
    "KakAdapter",
    "TemplateOptimizationAdapter",
]
