"""SMT model for quantum circuit adaptation (Section IV.C).

The model contains, for a circuit with blocks ``B``, substitutions ``S`` and
block dependency graph ``G = (V, A)``:

* Boolean selection variables ``c_s`` (set ``C``),
* block start times ``e_b`` (set ``E``), durations ``d_b`` (set ``D``) and
  log-fidelities ``f_b`` (set ``F``),
* the mutual-exclusion clauses of Eq. (1),
* the precedence constraints of Eq. (2),
* the duration and fidelity definitions of Eqs. (3)-(6), encoded with one
  auxiliary real per (substitution, quantity) switched by ``c_s``,
* one of the objectives SAT_F (Eq. 8), SAT_R (Eq. 9) or SAT_P (Eq. 10).

Solving is delegated to :class:`repro.smt.Optimize` (the pure-Python OMT
solver standing in for Z3).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.preprocessing import PreprocessedCircuit
from repro.core.rules import Substitution
from repro.smt import And, Bool, CheckResult, Implies, Not, Optimize, Or, Real, RealVal, Sum

#: Objective maximizing the (log) circuit fidelity, Eq. (8).
OBJECTIVE_FIDELITY = "fidelity"
#: Objective minimizing the qubit idle time, Eq. (9).
OBJECTIVE_IDLE = "idle"
#: Combined objective, Eq. (10).
OBJECTIVE_COMBINED = "combined"

_OBJECTIVES = (OBJECTIVE_FIDELITY, OBJECTIVE_IDLE, OBJECTIVE_COMBINED)

#: Default cap on OMT objective-strengthening rounds.  Resolved at model
#: *build* time, so test fixtures can lower it globally (see
#: ``tests/conftest.py``) without touching call sites.  Overridable via
#: the ``REPRO_MAX_IMPROVEMENT_ROUNDS`` environment variable for batch /
#: CI runs that trade optimality for wall time.
DEFAULT_MAX_IMPROVEMENT_ROUNDS = int(
    os.environ.get("REPRO_MAX_IMPROVEMENT_ROUNDS", "400")
)


@dataclass
class ModelSolution:
    """Assignment extracted from the solved SMT model."""

    chosen_substitutions: List[Substitution]
    objective_value: Optional[float]
    block_durations: Dict[int, float]
    block_log_fidelities: Dict[int, float]
    #: Block start times: solver-assigned when the objective schedules
    #: blocks (idle/combined), otherwise the ASAP critical-path schedule.
    block_start_times: Dict[int, float]
    #: Circuit makespan: the solved schedule's makespan when available,
    #: otherwise the critical path of the block dependency graph.
    total_duration: float
    statistics: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form that round-trips exactly.

        Integer block indices become string keys under ``json.dumps``;
        :meth:`from_dict` restores them, so
        ``ModelSolution.from_dict(json.loads(json.dumps(sol.to_dict())))``
        reproduces durations, fidelities and the schedule bit-identically.
        """
        return {
            "chosen_substitutions": [s.to_dict() for s in self.chosen_substitutions],
            "objective_value": self.objective_value,
            "block_durations": {str(k): v for k, v in self.block_durations.items()},
            "block_log_fidelities": {
                str(k): v for k, v in self.block_log_fidelities.items()
            },
            "block_start_times": {str(k): v for k, v in self.block_start_times.items()},
            "total_duration": self.total_duration,
            "statistics": dict(self.statistics),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "ModelSolution":
        """Inverse of :meth:`to_dict`."""
        objective = payload.get("objective_value")
        return ModelSolution(
            chosen_substitutions=[
                Substitution.from_dict(s)
                for s in payload.get("chosen_substitutions", [])
            ],
            objective_value=float(objective) if objective is not None else None,
            block_durations={
                int(k): float(v) for k, v in payload["block_durations"].items()
            },
            block_log_fidelities={
                int(k): float(v) for k, v in payload["block_log_fidelities"].items()
            },
            block_start_times={
                int(k): float(v) for k, v in payload["block_start_times"].items()
            },
            total_duration=float(payload["total_duration"]),
            statistics=dict(payload.get("statistics", {})),
        )


class AdaptationModel:
    """Builds and solves the SMT adaptation model for one circuit."""

    def __init__(
        self,
        preprocessed: PreprocessedCircuit,
        substitutions: Sequence[Substitution],
        objective: str = OBJECTIVE_COMBINED,
        max_improvement_rounds: Optional[int] = None,
        incremental_theory: bool = True,
    ) -> None:
        if objective not in _OBJECTIVES:
            raise ValueError(f"objective must be one of {_OBJECTIVES}")
        self.preprocessed = preprocessed
        self.substitutions = list(substitutions)
        self.objective = objective
        self.max_improvement_rounds = max_improvement_rounds
        self.incremental_theory = incremental_theory
        self._optimizer: Optional[Optimize] = None

    # ------------------------------------------------------------------
    def build(self) -> Optimize:
        """Construct the SMT model and return the underlying optimizer."""
        rounds = (
            self.max_improvement_rounds
            if self.max_improvement_rounds is not None
            else DEFAULT_MAX_IMPROVEMENT_ROUNDS
        )
        optimizer = Optimize(
            max_improvement_rounds=rounds,
            incremental_theory=self.incremental_theory,
        )
        blocks = self.preprocessed.blocks
        coherence_time = self.preprocessed.target.t2

        choose = {s.identifier: Bool(f"c{s.identifier}") for s in self.substitutions}

        # Eq. (1): substitutions replacing a common gate are mutually exclusive.
        for first_index, first in enumerate(self.substitutions):
            for second in self.substitutions[first_index + 1 :]:
                if first.conflicts_with(second):
                    optimizer.add(
                        Or(Not(choose[first.identifier]), Not(choose[second.identifier]))
                    )

        # Eqs. (3)-(6): block duration and fidelity as affine functions of the
        # chosen substitutions, via one switched auxiliary real per delta.
        duration_vars = {}
        fidelity_vars = {}
        start_vars = {}
        needs_schedule = self.objective in (OBJECTIVE_IDLE, OBJECTIVE_COMBINED)
        needs_fidelity = self.objective in (OBJECTIVE_FIDELITY, OBJECTIVE_COMBINED)

        by_block: Dict[int, List[Substitution]] = {}
        for substitution in self.substitutions:
            by_block.setdefault(substitution.block_index, []).append(substitution)

        for preprocessed_block in blocks:
            index = preprocessed_block.index
            block_subs = by_block.get(index, [])
            duration_var = Real(f"d{index}")
            duration_vars[index] = duration_var
            duration_terms = [RealVal(preprocessed_block.reference_duration)]
            for substitution in block_subs:
                switch = Real(f"yd{substitution.identifier}")
                optimizer.add(
                    Implies(
                        choose[substitution.identifier],
                        switch.eq(RealVal(substitution.duration_delta)),
                    ),
                    Implies(Not(choose[substitution.identifier]), switch.eq(RealVal(0))),
                )
                duration_terms.append(switch)
            optimizer.add(duration_var.eq(Sum(duration_terms)))

            if needs_fidelity:
                fidelity_var = Real(f"f{index}")
                fidelity_vars[index] = fidelity_var
                fidelity_terms = [RealVal(preprocessed_block.reference_log_fidelity)]
                for substitution in block_subs:
                    switch = Real(f"yf{substitution.identifier}")
                    optimizer.add(
                        Implies(
                            choose[substitution.identifier],
                            switch.eq(RealVal(substitution.log_fidelity_delta)),
                        ),
                        Implies(Not(choose[substitution.identifier]), switch.eq(RealVal(0))),
                    )
                    fidelity_terms.append(switch)
                optimizer.add(fidelity_var.eq(Sum(fidelity_terms)))

        # Eq. (2): block precedence, plus the makespan definition.
        makespan = Real("makespan")
        if needs_schedule:
            for preprocessed_block in blocks:
                index = preprocessed_block.index
                start_var = Real(f"e{index}")
                start_vars[index] = start_var
                optimizer.add(start_var >= RealVal(0))
                optimizer.add(makespan >= start_var + duration_vars[index])
            for source, destination in self.preprocessed.dependency_graph.edges:
                optimizer.add(
                    start_vars[destination] >= start_vars[source] + duration_vars[source]
                )

        # Objective functions, Eqs. (8)-(10).
        active_qubits = max(1, len(self.preprocessed.circuit.qubits_used()))
        if self.objective == OBJECTIVE_FIDELITY:
            objective_expr = Sum(fidelity_vars.values())
        elif self.objective == OBJECTIVE_IDLE:
            objective_expr = (
                Sum(duration_vars.values()) - RealVal(active_qubits) * makespan
            ) / coherence_time
        else:
            objective_expr = Sum(fidelity_vars.values()) + (
                Sum(duration_vars.values()) - RealVal(active_qubits) * makespan
            ) / coherence_time
        self._objective_handle = optimizer.maximize(objective_expr)

        self._choose = choose
        self._duration_vars = duration_vars
        self._fidelity_vars = fidelity_vars
        self._start_vars = start_vars
        self._makespan = makespan
        self._optimizer = optimizer
        return optimizer

    # ------------------------------------------------------------------
    def solve(self) -> ModelSolution:
        """Build (if necessary) and solve the model, returning the assignment."""
        if self._optimizer is None:
            self.build()
        optimizer = self._optimizer
        assert optimizer is not None
        result = optimizer.check()
        if result != CheckResult.SAT:
            raise RuntimeError(f"adaptation model unexpectedly {result.value}")
        model = optimizer.model()

        chosen = [
            substitution
            for substitution in self.substitutions
            if model.eval_bool(f"c{substitution.identifier}")
        ]
        durations = {
            index: float(model.eval_linear(var)) for index, var in self._duration_vars.items()
        }
        fidelities = {
            index: float(model.eval_linear(var)) for index, var in self._fidelity_vars.items()
        }
        if self._start_vars:
            starts = {
                index: float(model.eval_linear(var))
                for index, var in self._start_vars.items()
            }
            total_duration = float(model.eval_linear(self._makespan))
        else:
            # The fidelity objective builds no schedule variables; derive
            # the makespan from the critical path of the dependency graph.
            starts, total_duration = self._critical_path_schedule(durations)
        try:
            objective_value: Optional[float] = float(self._objective_handle.value())
        except RuntimeError:
            objective_value = None
        return ModelSolution(
            chosen_substitutions=chosen,
            objective_value=objective_value,
            block_durations=durations,
            block_log_fidelities=fidelities,
            block_start_times=starts,
            total_duration=total_duration,
            statistics=optimizer.statistics(),
        )

    # ------------------------------------------------------------------
    def _critical_path_schedule(
        self, durations: Dict[int, float]
    ) -> Tuple[Dict[int, float], float]:
        """ASAP schedule of the block dependency DAG for solved durations."""
        graph = self.preprocessed.dependency_graph
        starts: Dict[int, float] = {}
        finish: Dict[int, float] = {}
        for node in nx.topological_sort(graph):
            start = max((finish[p] for p in graph.predecessors(node)), default=0.0)
            starts[node] = start
            finish[node] = start + durations.get(node, 0.0)
        # Blocks absent from the graph (none in practice) still count.
        for index, duration in durations.items():
            if index not in finish:
                starts[index] = 0.0
                finish[index] = duration
        return starts, max(finish.values(), default=0.0)
