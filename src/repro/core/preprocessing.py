"""Preprocessing: block partition, reference translation and reference costs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import networkx as nx

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.hardware.target import Target
from repro.transpiler.basis import translate_block_reference
from repro.transpiler.blocks import Block, block_dependency_graph, collect_two_qubit_blocks
from repro.transpiler.scheduling import asap_schedule, gate_fidelity


@dataclass
class PreprocessedBlock:
    """One block with its reference adaptation and reference costs."""

    block: Block
    reference_instructions: List[Instruction]
    reference_duration: float
    reference_log_fidelity: float

    @property
    def index(self) -> int:
        """The block index (shared with the dependency graph node id)."""
        return self.block.index


@dataclass
class PreprocessedCircuit:
    """Output of the preprocessing step (Fig. 2a)."""

    circuit: QuantumCircuit
    target: Target
    blocks: List[PreprocessedBlock] = field(default_factory=list)
    dependency_graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def block(self, index: int) -> PreprocessedBlock:
        """Return the preprocessed block with the given index."""
        return self.blocks[index]

    def reference_circuit(self) -> QuantumCircuit:
        """The full reference adaptation (direct basis translation per block)."""
        reference = QuantumCircuit(self.circuit.num_qubits, name=f"{self.circuit.name}_reference")
        for preprocessed in self.blocks:
            for instruction in preprocessed.reference_instructions:
                reference.append(instruction.gate, instruction.qubits)
        return reference

    def total_reference_duration(self) -> float:
        """Sum of the per-block reference durations."""
        return sum(block.reference_duration for block in self.blocks)


def _block_critical_path(instructions: List[Instruction], target: Target, num_qubits: int) -> float:
    """Critical-path duration of a list of instructions on the target."""
    if not instructions:
        return 0.0
    scratch = QuantumCircuit(num_qubits, name="block_schedule")
    for instruction in instructions:
        scratch.append(instruction.gate, instruction.qubits)
    return asap_schedule(scratch, target).total_duration


def _block_log_fidelity(instructions: List[Instruction], target: Target) -> float:
    """Sum of log gate fidelities of a list of instructions on the target."""
    return sum(math.log(gate_fidelity(instruction, target)) for instruction in instructions)


def preprocess(circuit: QuantumCircuit, target: Target) -> PreprocessedCircuit:
    """Run the preprocessing step on a (routed) circuit.

    The circuit must already comply with the target topology: every
    two-qubit gate must act on a connected pair (use
    :func:`repro.transpiler.route_circuit` first when it does not).
    """
    for instruction in circuit.instructions:
        if len(instruction.qubits) == 2 and not target.are_connected(*instruction.qubits):
            raise ValueError(
                f"instruction {instruction!r} acts on unconnected qubits; route the circuit first"
            )
    blocks = collect_two_qubit_blocks(circuit)
    graph = block_dependency_graph(circuit, blocks)
    preprocessed = PreprocessedCircuit(circuit=circuit, target=target, dependency_graph=graph)
    for block in blocks:
        reference = translate_block_reference(block)
        preprocessed.blocks.append(
            PreprocessedBlock(
                block=block,
                reference_instructions=reference,
                reference_duration=_block_critical_path(reference, target, circuit.num_qubits),
                reference_log_fidelity=_block_log_fidelity(reference, target),
            )
        )
    return preprocessed
