"""Deprecated baseline adapter classes (use :func:`repro.compile`).

The three baselines of Section V now live in the technique registry:

* ``technique="direct"`` -- direct basis translation: every non-native
  two-qubit gate becomes CZ plus single-qubit gates (also the reference
  every other technique is normalized against).
* ``technique="kak_cz"`` / ``"kak_dcz"`` -- every two-qubit block replaced
  by its KAK resynthesis using the adiabatic / diabatic CZ.
* ``technique="template_f"`` / ``"template_r"`` -- greedy template
  optimization with the fidelity / idle-time objective ("only a local
  solution can be determined for one template at a time").

The classes below are thin deprecation shims delegating to the facade;
they return :class:`repro.core.AdaptationResult` objects identical to the
facade's.  Note that ``result.technique`` (and each shim's
``technique_name``) now reports the canonical registry key — e.g.
``"kak_dcz"`` where the pre-facade classes said ``"kak_czd"``.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.adapter import AdaptationResult, SatAdapter, _warn_deprecated
from repro.core.rules import SubstitutionRule
from repro.hardware.target import Target


def _compile_with(circuit: QuantumCircuit, target: Target, technique: str,
                  options: Dict[str, object]) -> AdaptationResult:
    from repro.api import compile as _compile

    return _compile(circuit, target, technique=technique, **options)


class DirectTranslationAdapter:
    """Deprecated shim over ``repro.compile(..., technique='direct')``."""

    technique_name = "direct"

    def __init__(self, merge_single_qubit_gates: bool = False) -> None:
        _warn_deprecated(
            "DirectTranslationAdapter",
            "repro.compile(circuit, target, technique='direct')",
        )
        self.merge_single_qubit_gates = merge_single_qubit_gates

    def adapt(self, circuit: QuantumCircuit, target: Target) -> AdaptationResult:
        """Translate every foreign gate through the CZ equivalence library."""
        return _compile_with(
            circuit,
            target,
            "direct",
            {"merge_single_qubit_gates": self.merge_single_qubit_gates},
        )


class KakAdapter:
    """Deprecated shim over ``repro.compile(..., technique='kak_cz'/'kak_dcz')``."""

    _TECHNIQUE_BY_CZ = {"cz": "kak_cz", "cz_d": "kak_dcz"}

    def __init__(self, cz_gate: str = "cz", merge_single_qubit_gates: bool = False) -> None:
        if cz_gate not in self._TECHNIQUE_BY_CZ:
            raise ValueError(f"cz_gate must be one of {tuple(self._TECHNIQUE_BY_CZ)}")
        _warn_deprecated(
            "KakAdapter",
            f"repro.compile(circuit, target, technique="
            f"{self._TECHNIQUE_BY_CZ[cz_gate]!r})",
        )
        self.cz_gate = cz_gate
        self.merge_single_qubit_gates = merge_single_qubit_gates
        # Canonical registry key, matching what adapt() reports.
        self.technique_name = self._TECHNIQUE_BY_CZ[cz_gate]

    def adapt(self, circuit: QuantumCircuit, target: Target) -> AdaptationResult:
        """Replace every two-qubit block by its KAK resynthesis."""
        return _compile_with(
            circuit,
            target,
            self._TECHNIQUE_BY_CZ[self.cz_gate],
            {"merge_single_qubit_gates": self.merge_single_qubit_gates},
        )


class TemplateOptimizationAdapter:
    """Deprecated shim over ``repro.compile(..., technique='template_*')``."""

    _TECHNIQUE_BY_OBJECTIVE = {"fidelity": "template_f", "idle": "template_r"}

    def __init__(
        self,
        objective: str = "fidelity",
        rules: Optional[Sequence[SubstitutionRule]] = None,
        merge_single_qubit_gates: bool = False,
    ) -> None:
        if objective not in ("fidelity", "idle"):
            raise ValueError("objective must be 'fidelity' or 'idle'")
        _warn_deprecated(
            "TemplateOptimizationAdapter",
            f"repro.compile(circuit, target, technique="
            f"{self._TECHNIQUE_BY_OBJECTIVE[objective]!r})",
        )
        self.objective = objective
        self.rules = list(rules) if rules is not None else None
        self.merge_single_qubit_gates = merge_single_qubit_gates
        # Canonical registry key, matching what adapt() reports.
        self.technique_name = self._TECHNIQUE_BY_OBJECTIVE[objective]

    def adapt(self, circuit: QuantumCircuit, target: Target) -> AdaptationResult:
        """Apply the best locally-improving substitution per matched template."""
        options: Dict[str, object] = {
            "merge_single_qubit_gates": self.merge_single_qubit_gates,
        }
        if self.rules is not None:
            options["rules"] = self.rules
        return _compile_with(
            circuit, target, self._TECHNIQUE_BY_OBJECTIVE[self.objective], options
        )


def all_techniques(objectives: Sequence[str] = ("fidelity", "idle", "combined")) -> List[object]:
    """Deprecated: one legacy adapter per Section V technique.

    Prefer iterating :data:`repro.api.PAPER_TECHNIQUES` with
    :func:`repro.compile`.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        adapters: List[object] = [
            DirectTranslationAdapter(),
            KakAdapter("cz"),
            KakAdapter("cz_d"),
            TemplateOptimizationAdapter("fidelity"),
            TemplateOptimizationAdapter("idle"),
        ]
        for objective in objectives:
            adapters.append(SatAdapter(objective=objective))
    _warn_deprecated("all_techniques", "repro.api.PAPER_TECHNIQUES with repro.compile")
    return adapters
