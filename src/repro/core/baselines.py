"""Baseline adaptation techniques the SMT approach is compared against.

Three baselines mirror Section V of the paper:

* :class:`DirectTranslationAdapter` -- direct basis translation: every
  non-native two-qubit gate becomes CZ plus single-qubit gates.  This is
  also the reference every other technique is normalized against.
* :class:`KakAdapter` -- every two-qubit block is replaced by its KAK
  resynthesis using CZ (or diabatic CZ) and single-qubit gates.
* :class:`TemplateOptimizationAdapter` -- template optimization: the Fig. 3
  substitution rules are applied greedily, one block and one template at a
  time, keeping a substitution whenever it improves the local objective
  (circuit fidelity or qubit idle time).  This captures the "only a local
  solution can be determined for one template at a time" behaviour the
  paper contrasts with the global SMT optimization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.adapter import AdaptationResult, SatAdapter, apply_substitutions
from repro.core.preprocessing import preprocess
from repro.core.rules import (
    KakDecompositionRule,
    Substitution,
    SubstitutionRule,
    evaluate_rules,
    standard_rules,
)
from repro.hardware.target import Target
from repro.synthesis.single_qubit import merge_single_qubit_runs
from repro.transpiler.cost import analyze_cost


class DirectTranslationAdapter:
    """Adaptation by direct basis translation (the paper's baseline)."""

    technique_name = "direct"

    def __init__(self, merge_single_qubit_gates: bool = False) -> None:
        self.merge_single_qubit_gates = merge_single_qubit_gates

    def adapt(self, circuit: QuantumCircuit, target: Target) -> AdaptationResult:
        """Translate every foreign gate through the CZ equivalence library."""
        routed = SatAdapter._route_if_needed(circuit, target)
        preprocessed = preprocess(routed, target)
        adapted = preprocessed.reference_circuit()
        if self.merge_single_qubit_gates:
            adapted = merge_single_qubit_runs(adapted)
        cost = analyze_cost(adapted, target)
        return AdaptationResult(
            technique=self.technique_name,
            adapted_circuit=adapted,
            cost=cost,
            baseline_cost=cost,
        )


class KakAdapter:
    """Adaptation by per-block KAK decomposition with (diabatic) CZ gates."""

    def __init__(self, cz_gate: str = "cz", merge_single_qubit_gates: bool = False) -> None:
        self.cz_gate = cz_gate
        self.merge_single_qubit_gates = merge_single_qubit_gates
        self.technique_name = "kak" if cz_gate == "cz" else "kak_czd"

    def adapt(self, circuit: QuantumCircuit, target: Target) -> AdaptationResult:
        """Replace every two-qubit block by its KAK resynthesis."""
        routed = SatAdapter._route_if_needed(circuit, target)
        preprocessed = preprocess(routed, target)
        substitutions = evaluate_rules(preprocessed, [KakDecompositionRule(self.cz_gate)])
        adapted = apply_substitutions(preprocessed, substitutions)
        if self.merge_single_qubit_gates:
            adapted = merge_single_qubit_runs(adapted)
        return AdaptationResult(
            technique=self.technique_name,
            adapted_circuit=adapted,
            cost=analyze_cost(adapted, target),
            baseline_cost=analyze_cost(preprocessed.reference_circuit(), target),
            chosen_substitutions=list(substitutions),
        )


class TemplateOptimizationAdapter:
    """Greedy, per-template local optimization (the template baseline).

    Parameters
    ----------
    objective:
        ``"fidelity"`` keeps a substitution when it improves the block's
        log-fidelity; ``"idle"`` keeps it when it reduces the block duration.
    rules:
        Substitution rules to try; defaults to the Fig. 3 set without the
        KAK rule (template optimization works on circuit identities).
    """

    def __init__(
        self,
        objective: str = "fidelity",
        rules: Optional[Sequence[SubstitutionRule]] = None,
        merge_single_qubit_gates: bool = False,
    ) -> None:
        if objective not in ("fidelity", "idle"):
            raise ValueError("objective must be 'fidelity' or 'idle'")
        self.objective = objective
        self.rules = list(rules) if rules is not None else standard_rules(include_kak=False)
        self.merge_single_qubit_gates = merge_single_qubit_gates
        self.technique_name = f"template_{objective}"

    # ------------------------------------------------------------------
    def _is_improvement(self, substitution: Substitution) -> bool:
        if self.objective == "fidelity":
            return substitution.log_fidelity_delta > 1e-12
        return substitution.duration_delta < -1e-9

    def _local_score(self, substitution: Substitution) -> float:
        if self.objective == "fidelity":
            return substitution.log_fidelity_delta
        return -substitution.duration_delta

    def adapt(self, circuit: QuantumCircuit, target: Target) -> AdaptationResult:
        """Apply the best locally-improving substitution per matched template."""
        routed = SatAdapter._route_if_needed(circuit, target)
        preprocessed = preprocess(routed, target)
        substitutions = evaluate_rules(preprocessed, self.rules)

        # Greedy, local selection: walk the matches block by block in match
        # order; accept a substitution when it improves the local objective
        # and does not overlap an already accepted one.
        accepted: List[Substitution] = []
        by_block: Dict[int, List[Substitution]] = {}
        for substitution in substitutions:
            by_block.setdefault(substitution.block_index, []).append(substitution)
        for block_index in sorted(by_block):
            taken: List[Substitution] = []
            candidates = sorted(
                by_block[block_index], key=self._local_score, reverse=True
            )
            for candidate in candidates:
                if not self._is_improvement(candidate):
                    continue
                if any(candidate.conflicts_with(existing) for existing in taken):
                    continue
                taken.append(candidate)
            accepted.extend(taken)

        adapted = apply_substitutions(preprocessed, accepted)
        if self.merge_single_qubit_gates:
            adapted = merge_single_qubit_runs(adapted)
        return AdaptationResult(
            technique=self.technique_name,
            adapted_circuit=adapted,
            cost=analyze_cost(adapted, target),
            baseline_cost=analyze_cost(preprocessed.reference_circuit(), target),
            chosen_substitutions=accepted,
        )


def all_techniques(objectives: Sequence[str] = ("fidelity", "idle", "combined")) -> List[object]:
    """Return one instance of every technique evaluated in Section V."""
    adapters: List[object] = [
        DirectTranslationAdapter(),
        KakAdapter("cz"),
        KakAdapter("cz_d"),
        TemplateOptimizationAdapter("fidelity"),
        TemplateOptimizationAdapter("idle"),
    ]
    for objective in objectives:
        adapters.append(SatAdapter(objective=objective))
    return adapters
