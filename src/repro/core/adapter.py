"""The adaptation result container, substitution application, legacy shim.

The class-per-technique API (:class:`SatAdapter` and the baseline adapters
in :mod:`repro.core.baselines`) is deprecated: the single front door is
now :func:`repro.compile`, which resolves string technique keys through
:mod:`repro.api.registry` and runs the instrumented pass pipeline of
:mod:`repro.pipeline`.  The legacy classes remain as thin shims that emit
a :class:`DeprecationWarning` and delegate to the facade, returning
identical :class:`AdaptationResult` objects.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.preprocessing import PreprocessedCircuit
from repro.core.rules import Substitution, SubstitutionRule
from repro.hardware.target import Target
from repro.transpiler.basis import translate_instruction_to_cz
from repro.transpiler.cost import CircuitCost

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.report import CompilationReport


@dataclass
class AdaptationResult:
    """An adapted circuit together with its costs and provenance."""

    technique: str
    adapted_circuit: QuantumCircuit
    cost: CircuitCost
    baseline_cost: Optional[CircuitCost] = None
    chosen_substitutions: List[Substitution] = field(default_factory=list)
    objective_value: Optional[float] = None
    #: Solver/selection counters; heuristic techniques report their
    #: selection kind and candidate/accepted counts here (string values
    #: name the strategy or the reason no solver ran).
    statistics: Dict[str, object] = field(default_factory=dict)
    #: Per-stage instrumentation attached by :func:`repro.compile`.
    report: Optional["CompilationReport"] = None

    # Convenience metrics used throughout the evaluation section -----------
    @property
    def fidelity_change(self) -> float:
        """Relative change in gate-fidelity product vs the baseline adaptation."""
        if self.baseline_cost is None:
            raise ValueError("no baseline cost recorded")
        baseline = self.baseline_cost.gate_fidelity_product
        return (self.cost.gate_fidelity_product - baseline) / baseline

    @property
    def idle_time_decrease(self) -> float:
        """Relative decrease in total qubit idle time vs the baseline adaptation."""
        if self.baseline_cost is None:
            raise ValueError("no baseline cost recorded")
        baseline = self.baseline_cost.total_idle_time
        if baseline <= 0:
            return 0.0
        return (baseline - self.cost.total_idle_time) / baseline

    # Exact serialization (persistent result store) -------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form that round-trips exactly.

        Costs, durations, gate counts, substitutions and the per-stage
        report all survive ``json.dumps``/``loads`` bit-identically, which
        is what :class:`repro.service.PersistentResultStore` relies on.
        Non-numeric solver statistics values degrade to strings.
        """
        return {
            "technique": self.technique,
            "adapted_circuit": self.adapted_circuit.to_dict(),
            "cost": self.cost.to_dict(),
            "baseline_cost": (
                self.baseline_cost.to_dict() if self.baseline_cost is not None else None
            ),
            "chosen_substitutions": [s.to_dict() for s in self.chosen_substitutions],
            "objective_value": self.objective_value,
            "statistics": {
                key: value if isinstance(value, (int, float, bool, str)) else str(value)
                for key, value in self.statistics.items()
            },
            "report": self.report.to_dict() if self.report is not None else None,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "AdaptationResult":
        """Inverse of :meth:`to_dict`."""
        from repro.pipeline.report import CompilationReport

        objective = payload.get("objective_value")
        baseline = payload.get("baseline_cost")
        report = payload.get("report")
        return AdaptationResult(
            technique=payload["technique"],
            adapted_circuit=QuantumCircuit.from_dict(payload["adapted_circuit"]),
            cost=CircuitCost.from_dict(payload["cost"]),
            baseline_cost=CircuitCost.from_dict(baseline) if baseline is not None else None,
            chosen_substitutions=[
                Substitution.from_dict(s) for s in payload.get("chosen_substitutions", [])
            ],
            objective_value=float(objective) if objective is not None else None,
            statistics=dict(payload.get("statistics", {})),
            report=CompilationReport.from_dict(report) if report is not None else None,
        )


def apply_substitutions(
    preprocessed: PreprocessedCircuit, chosen: Sequence[Substitution]
) -> QuantumCircuit:
    """Apply chosen substitutions and fall back to basis translation elsewhere.

    "A substitution s is applied ... by substituting quantum gates ps with
    gs.  A quantum gate ... is substituted by the basis translation performed
    in the preprocessing step if the quantum gate is not part of any chosen
    substitution." (Section IV.C.4)
    """
    circuit = preprocessed.circuit
    target = preprocessed.target
    by_block: Dict[int, List[Substitution]] = {}
    for substitution in chosen:
        by_block.setdefault(substitution.block_index, []).append(substitution)

    adapted = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_adapted")
    for preprocessed_block in preprocessed.blocks:
        block = preprocessed_block.block
        block_subs = by_block.get(block.index, [])
        # Map each substituted position to the substitution anchored there.
        anchor: Dict[int, Substitution] = {}
        covered: Dict[int, Substitution] = {}
        for substitution in block_subs:
            positions = substitution.substituted_positions
            anchor[min(positions)] = substitution
            for position in positions:
                covered[position] = substitution
        for position, instruction in enumerate(block.instructions):
            if position in covered:
                if position in anchor:
                    for replacement in anchor[position].replacement:
                        adapted.append(replacement.gate, replacement.qubits)
                continue
            if len(instruction.qubits) == 1 or target.supports(instruction.name):
                adapted.append(instruction.gate, instruction.qubits)
            else:
                for replacement in translate_instruction_to_cz(instruction):
                    adapted.append(replacement.gate, replacement.qubits)
    return adapted


def _warn_deprecated(old: str, replacement: str) -> None:
    """Emit the standard legacy-API deprecation warning."""
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class SatAdapter:
    """Deprecated shim over ``repro.compile(..., technique='sat_*')``.

    Parameters
    ----------
    objective:
        One of ``"fidelity"`` (SAT_F, Eq. 8), ``"idle"`` (SAT_R, Eq. 9) or
        ``"combined"`` (SAT_P, Eq. 10).
    rules:
        Substitution rules to consider; defaults to the Fig. 3 rule set.
    merge_single_qubit_gates:
        Merge adjacent single-qubit gates in the adapted circuit.
    verify:
        Check that the adapted circuit is unitarily equivalent (up to global
        phase) to the routed input; only feasible for small circuits.
    """

    technique_name = "sat"

    _TECHNIQUE_BY_OBJECTIVE = {
        "fidelity": "sat_f",
        "idle": "sat_r",
        "combined": "sat_p",
    }

    def __init__(
        self,
        objective: str = "combined",
        rules: Optional[Sequence[SubstitutionRule]] = None,
        merge_single_qubit_gates: bool = False,
        verify: bool = False,
        max_improvement_rounds: Optional[int] = None,
    ) -> None:
        if objective not in self._TECHNIQUE_BY_OBJECTIVE:
            raise ValueError(
                f"objective must be one of {tuple(self._TECHNIQUE_BY_OBJECTIVE)}"
            )
        _warn_deprecated(
            "SatAdapter",
            f"repro.compile(circuit, target, technique="
            f"{self._TECHNIQUE_BY_OBJECTIVE[objective]!r})",
        )
        self.objective = objective
        self.rules = list(rules) if rules is not None else None
        self.merge_single_qubit_gates = merge_single_qubit_gates
        self.verify = verify
        self.max_improvement_rounds = max_improvement_rounds
        # Canonical registry key, matching what adapt() reports.
        self.technique_name = self._TECHNIQUE_BY_OBJECTIVE[objective]

    # ------------------------------------------------------------------
    def adapt(self, circuit: QuantumCircuit, target: Target) -> AdaptationResult:
        """Adapt ``circuit`` to ``target`` through the unified facade."""
        from repro.api import compile as _compile

        options: Dict[str, object] = {
            "merge_single_qubit_gates": self.merge_single_qubit_gates,
            "verify": self.verify,
        }
        if self.rules is not None:
            options["rules"] = self.rules
        if self.max_improvement_rounds is not None:
            options["max_improvement_rounds"] = self.max_improvement_rounds
        return _compile(
            circuit,
            target,
            technique=self._TECHNIQUE_BY_OBJECTIVE[self.objective],
            **options,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _route_if_needed(circuit: QuantumCircuit, target: Target) -> QuantumCircuit:
        from repro.pipeline.passes import route_if_needed

        return route_if_needed(circuit, target)
