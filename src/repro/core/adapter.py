"""The SAT/SMT-based circuit adapter and the adaptation result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.unitary import allclose_up_to_global_phase, circuit_unitary
from repro.core.model import AdaptationModel, ModelSolution, OBJECTIVE_COMBINED
from repro.core.preprocessing import PreprocessedCircuit, preprocess
from repro.core.rules import Substitution, SubstitutionRule, evaluate_rules, standard_rules
from repro.hardware.target import Target
from repro.synthesis.single_qubit import merge_single_qubit_runs
from repro.transpiler.basis import translate_instruction_to_cz
from repro.transpiler.cost import CircuitCost, analyze_cost
from repro.transpiler.routing import route_circuit


@dataclass
class AdaptationResult:
    """An adapted circuit together with its costs and provenance."""

    technique: str
    adapted_circuit: QuantumCircuit
    cost: CircuitCost
    baseline_cost: Optional[CircuitCost] = None
    chosen_substitutions: List[Substitution] = field(default_factory=list)
    objective_value: Optional[float] = None
    statistics: Dict[str, int] = field(default_factory=dict)

    # Convenience metrics used throughout the evaluation section -----------
    @property
    def fidelity_change(self) -> float:
        """Relative change in gate-fidelity product vs the baseline adaptation."""
        if self.baseline_cost is None:
            raise ValueError("no baseline cost recorded")
        baseline = self.baseline_cost.gate_fidelity_product
        return (self.cost.gate_fidelity_product - baseline) / baseline

    @property
    def idle_time_decrease(self) -> float:
        """Relative decrease in total qubit idle time vs the baseline adaptation."""
        if self.baseline_cost is None:
            raise ValueError("no baseline cost recorded")
        baseline = self.baseline_cost.total_idle_time
        if baseline <= 0:
            return 0.0
        return (baseline - self.cost.total_idle_time) / baseline


def apply_substitutions(
    preprocessed: PreprocessedCircuit, chosen: Sequence[Substitution]
) -> QuantumCircuit:
    """Apply chosen substitutions and fall back to basis translation elsewhere.

    "A substitution s is applied ... by substituting quantum gates ps with
    gs.  A quantum gate ... is substituted by the basis translation performed
    in the preprocessing step if the quantum gate is not part of any chosen
    substitution." (Section IV.C.4)
    """
    circuit = preprocessed.circuit
    target = preprocessed.target
    by_block: Dict[int, List[Substitution]] = {}
    for substitution in chosen:
        by_block.setdefault(substitution.block_index, []).append(substitution)

    adapted = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_adapted")
    for preprocessed_block in preprocessed.blocks:
        block = preprocessed_block.block
        block_subs = by_block.get(block.index, [])
        # Map each substituted position to the substitution anchored there.
        anchor: Dict[int, Substitution] = {}
        covered: Dict[int, Substitution] = {}
        for substitution in block_subs:
            positions = substitution.substituted_positions
            anchor[min(positions)] = substitution
            for position in positions:
                covered[position] = substitution
        for position, instruction in enumerate(block.instructions):
            if position in covered:
                if position in anchor:
                    for replacement in anchor[position].replacement:
                        adapted.append(replacement.gate, replacement.qubits)
                continue
            if len(instruction.qubits) == 1 or target.supports(instruction.name):
                adapted.append(instruction.gate, instruction.qubits)
            else:
                for replacement in translate_instruction_to_cz(instruction):
                    adapted.append(replacement.gate, replacement.qubits)
    return adapted


class SatAdapter:
    """Quantum circuit adaptation driven by the SMT model (Section IV).

    Parameters
    ----------
    objective:
        One of ``"fidelity"`` (SAT_F, Eq. 8), ``"idle"`` (SAT_R, Eq. 9) or
        ``"combined"`` (SAT_P, Eq. 10).
    rules:
        Substitution rules to consider; defaults to the Fig. 3 rule set.
    merge_single_qubit_gates:
        Merge adjacent single-qubit gates in the adapted circuit.
    verify:
        Check that the adapted circuit is unitarily equivalent (up to global
        phase) to the routed input; only feasible for small circuits.
    """

    technique_name = "sat"

    def __init__(
        self,
        objective: str = OBJECTIVE_COMBINED,
        rules: Optional[Sequence[SubstitutionRule]] = None,
        merge_single_qubit_gates: bool = False,
        verify: bool = False,
        max_improvement_rounds: int = 400,
    ) -> None:
        self.objective = objective
        self.rules = list(rules) if rules is not None else standard_rules()
        self.merge_single_qubit_gates = merge_single_qubit_gates
        self.verify = verify
        self.max_improvement_rounds = max_improvement_rounds

    # ------------------------------------------------------------------
    def adapt(self, circuit: QuantumCircuit, target: Target) -> AdaptationResult:
        """Adapt ``circuit`` to ``target`` and return the result with costs."""
        routed = self._route_if_needed(circuit, target)
        preprocessed = preprocess(routed, target)
        substitutions = evaluate_rules(preprocessed, self.rules)
        model = AdaptationModel(
            preprocessed,
            substitutions,
            objective=self.objective,
            max_improvement_rounds=self.max_improvement_rounds,
        )
        solution = model.solve()
        adapted = apply_substitutions(preprocessed, solution.chosen_substitutions)
        if self.merge_single_qubit_gates:
            adapted = merge_single_qubit_runs(adapted)
        if self.verify:
            self._verify(routed, adapted)
        baseline = preprocessed.reference_circuit()
        return AdaptationResult(
            technique=f"{self.technique_name}_{self.objective}",
            adapted_circuit=adapted,
            cost=analyze_cost(adapted, target),
            baseline_cost=analyze_cost(baseline, target),
            chosen_substitutions=solution.chosen_substitutions,
            objective_value=solution.objective_value,
            statistics=solution.statistics,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _route_if_needed(circuit: QuantumCircuit, target: Target) -> QuantumCircuit:
        needs_routing = any(
            len(instruction.qubits) == 2 and not target.are_connected(*instruction.qubits)
            for instruction in circuit.instructions
        )
        if not needs_routing and circuit.num_qubits <= target.num_qubits:
            return circuit
        return route_circuit(circuit, target)

    @staticmethod
    def _verify(reference: QuantumCircuit, adapted: QuantumCircuit) -> None:
        if reference.num_qubits > 6:
            return
        if not allclose_up_to_global_phase(
            circuit_unitary(adapted), circuit_unitary(reference), atol=1e-6
        ):
            raise RuntimeError("adapted circuit is not equivalent to the input circuit")
