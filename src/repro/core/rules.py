"""Substitution rules (Fig. 3) and their evaluation on a circuit.

A substitution rule knows how to find applicable sites inside a two-qubit
block and what to replace them with.  Evaluating a rule on a preprocessed
circuit yields :class:`Substitution` objects carrying the substituted gates
``ps``, the substitution gates ``gs`` and the cost deltas of Eqs. (4) and
(6): the duration / log-fidelity of the substitution gates minus that of
the (reference translation of the) substituted gates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuits import gates as glib
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.unitary import circuit_unitary
from repro.hardware.target import Target
from repro.synthesis.two_qubit import decompose_two_qubit
from repro.transpiler.basis import translate_instruction_to_cz
from repro.transpiler.blocks import Block
from repro.transpiler.scheduling import gate_duration, gate_fidelity
from repro.core.preprocessing import PreprocessedCircuit


@dataclass
class Substitution:
    """One applicable substitution ``s`` with its cost deltas."""

    identifier: int
    rule_name: str
    block_index: int
    substituted_positions: Tuple[int, ...]
    replacement: List[Instruction]
    duration_delta: float
    log_fidelity_delta: float

    def conflicts_with(self, other: "Substitution") -> bool:
        """Two substitutions conflict when they substitute a common gate (Eq. 1)."""
        if self.block_index != other.block_index:
            return False
        return bool(set(self.substituted_positions) & set(other.substituted_positions))

    def to_dict(self) -> dict:
        """JSON-serializable form; cost deltas round-trip exactly."""
        return {
            "identifier": self.identifier,
            "rule_name": self.rule_name,
            "block_index": self.block_index,
            "substituted_positions": list(self.substituted_positions),
            "replacement": [inst.to_dict() for inst in self.replacement],
            "duration_delta": self.duration_delta,
            "log_fidelity_delta": self.log_fidelity_delta,
        }

    @staticmethod
    def from_dict(payload: dict) -> "Substitution":
        """Inverse of :meth:`to_dict`."""
        return Substitution(
            identifier=int(payload["identifier"]),
            rule_name=payload["rule_name"],
            block_index=int(payload["block_index"]),
            substituted_positions=tuple(int(p) for p in payload["substituted_positions"]),
            replacement=[Instruction.from_dict(e) for e in payload["replacement"]],
            duration_delta=float(payload["duration_delta"]),
            log_fidelity_delta=float(payload["log_fidelity_delta"]),
        )

    def __repr__(self) -> str:
        return (
            f"Substitution(id={self.identifier}, rule={self.rule_name}, "
            f"block={self.block_index}, dD={self.duration_delta:+.0f}ns, "
            f"dlogF={self.log_fidelity_delta:+.4f})"
        )


def _reference_cost_of_instruction(
    instruction: Instruction, target: Target
) -> Tuple[float, float]:
    """(duration, log fidelity) of the reference translation of one gate."""
    translated = translate_instruction_to_cz(instruction)
    duration = sum(gate_duration(inst, target) for inst in translated)
    log_fidelity = sum(math.log(gate_fidelity(inst, target)) for inst in translated)
    return duration, log_fidelity


def _cost_of_instructions(
    instructions: Sequence[Instruction], target: Target
) -> Tuple[float, float]:
    """(duration, log fidelity) summed over native instructions."""
    duration = sum(gate_duration(inst, target) for inst in instructions)
    log_fidelity = sum(math.log(gate_fidelity(inst, target)) for inst in instructions)
    return duration, log_fidelity


class SubstitutionRule:
    """Base class: a named rule that proposes substitutions inside blocks."""

    name = "rule"

    def applies_to(self, target: Target) -> bool:
        """Whether the target supports the gates this rule introduces."""
        return True

    def find(self, block: Block, target: Target) -> List[Tuple[Tuple[int, ...], List[Instruction]]]:
        """Return (substituted positions, replacement instructions) matches."""
        raise NotImplementedError


class ConditionalRotationRule(SubstitutionRule):
    """Fig. 3b: a CNOT is one conditional rotation plus a phase correction.

    ``CNOT = (S on control) . CROT(pi)`` -- the replacement uses the native
    CROT gate of the spin platform.
    """

    name = "crot"

    def applies_to(self, target: Target) -> bool:
        return target.supports("crot")

    def find(self, block: Block, target: Target) -> List[Tuple[Tuple[int, ...], List[Instruction]]]:
        matches = []
        for position, instruction in enumerate(block.instructions):
            if instruction.name == "cx":
                control, target_qubit = instruction.qubits
                replacement = [
                    Instruction(glib.crot(math.pi), (control, target_qubit)),
                    Instruction(glib.s(), (control,)),
                ]
                matches.append(((position,), replacement))
        return matches


class DirectSwapRule(SubstitutionRule):
    """Fig. 3c: replace a SWAP with the diabatic (direct) native swap."""

    name = "swap_d"

    def applies_to(self, target: Target) -> bool:
        return target.supports("swap_d")

    def find(self, block: Block, target: Target) -> List[Tuple[Tuple[int, ...], List[Instruction]]]:
        matches = []
        for position, instruction in enumerate(block.instructions):
            if instruction.name == "swap":
                matches.append(
                    ((position,), [Instruction(glib.swap_direct(), instruction.qubits)])
                )
        return matches


class CompositeSwapRule(SubstitutionRule):
    """Fig. 3d: replace a SWAP with the composite-pulse native swap."""

    name = "swap_c"

    def applies_to(self, target: Target) -> bool:
        return target.supports("swap_c")

    def find(self, block: Block, target: Target) -> List[Tuple[Tuple[int, ...], List[Instruction]]]:
        matches = []
        for position, instruction in enumerate(block.instructions):
            if instruction.name == "swap":
                matches.append(
                    ((position,), [Instruction(glib.swap_composite(), instruction.qubits)])
                )
        return matches


class KakDecompositionRule(SubstitutionRule):
    """Fig. 3e: replace a whole two-qubit block by its KAK resynthesis.

    The replacement uses CZ (or diabatic CZ) plus single-qubit gates and is
    computed from the block's unitary matrix, so it conflicts with every
    other substitution in the block.
    """

    def __init__(self, cz_gate: str = "cz") -> None:
        if cz_gate not in ("cz", "cz_d"):
            raise ValueError("cz_gate must be 'cz' or 'cz_d'")
        self.cz_gate = cz_gate
        self.name = "kak" if cz_gate == "cz" else "kak_czd"

    def applies_to(self, target: Target) -> bool:
        return target.supports(self.cz_gate)

    def find(self, block: Block, target: Target) -> List[Tuple[Tuple[int, ...], List[Instruction]]]:
        if not block.is_two_qubit or block.two_qubit_gate_count() == 0:
            return []
        local = block.as_circuit()
        unitary = circuit_unitary(local)
        decomposed = decompose_two_qubit(unitary)
        qubit_map = {0: block.qubits[0], 1: block.qubits[1]}
        replacement: List[Instruction] = []
        for instruction in decomposed.instructions:
            gate = instruction.gate
            if gate.name == "cz" and self.cz_gate == "cz_d":
                gate = glib.cz_diabatic()
            replacement.append(
                Instruction(gate, tuple(qubit_map[q] for q in instruction.qubits))
            )
        positions = tuple(range(len(block.instructions)))
        return [(positions, replacement)]


def standard_rules(include_kak: bool = True, kak_cz_gate: str = "cz") -> List[SubstitutionRule]:
    """The rule set of Fig. 3 used in the evaluation."""
    rules: List[SubstitutionRule] = [
        ConditionalRotationRule(),
        DirectSwapRule(),
        CompositeSwapRule(),
    ]
    if include_kak:
        rules.append(KakDecompositionRule(kak_cz_gate))
    return rules


def evaluate_rules(
    preprocessed: PreprocessedCircuit,
    rules: Optional[Sequence[SubstitutionRule]] = None,
) -> List[Substitution]:
    """Evaluate every rule on every block of a preprocessed circuit (Fig. 2b).

    Returns the full list of candidate substitutions with their Eq. (4)/(6)
    cost deltas computed against the reference translation of the gates
    they substitute.
    """
    target = preprocessed.target
    if rules is None:
        rules = standard_rules()
    substitutions: List[Substitution] = []
    for preprocessed_block in preprocessed.blocks:
        block = preprocessed_block.block
        for rule in rules:
            if not rule.applies_to(target):
                continue
            for positions, replacement in rule.find(block, target):
                substituted = [block.instructions[p] for p in positions]
                old_duration, old_log_fidelity = 0.0, 0.0
                for instruction in substituted:
                    duration, log_fidelity = _reference_cost_of_instruction(instruction, target)
                    old_duration += duration
                    old_log_fidelity += log_fidelity
                new_duration, new_log_fidelity = _cost_of_instructions(replacement, target)
                substitutions.append(
                    Substitution(
                        identifier=len(substitutions),
                        rule_name=rule.name,
                        block_index=block.index,
                        substituted_positions=tuple(positions),
                        replacement=list(replacement),
                        duration_delta=new_duration - old_duration,
                        log_fidelity_delta=new_log_fidelity - old_log_fidelity,
                    )
                )
    return substitutions
